"""Command-line entry point: run paper experiments by id.

Usage::

    python -m repro.experiments figure11 --dataset paper
    python -m repro.experiments all --scale 0.4
    python -m repro.experiments figure10 --dataset paper --plot
    python -m repro.experiments ablation-worker-noise --dataset paper

``all`` runs the paper's tables and figures (not the ablations).
"""

from __future__ import annotations

import argparse
import sys

from .config import ExperimentConfig
from .plotting import plot_histogram, plot_series
from .registry import all_experiment_ids, paper_experiment_ids, run_experiment
from .reporting import ExperimentResult


def _plot(result: ExperimentResult) -> "str | None":
    """Best-effort ASCII chart for figure experiments."""
    if result.experiment_id == "figure10":
        return plot_histogram(
            result.series["cluster_sizes"],
            result.series["cluster_counts"],
            title=result.title,
        )
    if result.experiment_id in ("figure13", "figure14"):
        return plot_series(
            {"parallel": result.series["parallel_round_sizes"]},
            log_y=True,
            title=result.title,
        )
    if result.experiment_id == "figure15":
        available = {
            name.replace("_available", ""): values
            for name, values in result.series.items()
            if name.endswith("_available")
        }
        return plot_series(available, title=result.title)
    if result.series:
        numeric = {
            name: values
            for name, values in result.series.items()
            if values and all(isinstance(v, (int, float)) for v in values)
        }
        if numeric:
            return plot_series(numeric, log_y=True, title=result.title)
    return None


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*all_experiment_ids(), "all"],
        help="which table/figure/ablation to run ('all' = the paper's results)",
    )
    parser.add_argument("--dataset", choices=("paper", "product", "both"), default="both")
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale in (0, 1]")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--plot", action="store_true", help="render ASCII charts too")
    args = parser.parse_args(argv)

    experiments = (
        paper_experiment_ids() if args.experiment == "all" else [args.experiment]
    )
    datasets = ("paper", "product") if args.dataset == "both" else (args.dataset,)
    for experiment_id in experiments:
        for dataset in datasets:
            config = ExperimentConfig(dataset=dataset, scale=args.scale, seed=args.seed)
            result = run_experiment(experiment_id, config)
            print(result.render())
            if args.plot:
                chart = _plot(result)
                if chart:
                    print()
                    print(chart)
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
