"""Experiment runners: one module per table/figure of the paper's
evaluation (Section 6), plus shared config, harness, and reporting."""

from .config import PAPER_THRESHOLDS, ExperimentConfig
from .harness import PreparedDataset, clear_cache, generate_dataset, prepare
from .registry import RUNNERS, all_experiment_ids, run_experiment
from .reporting import ExperimentResult, render_series, render_table

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "PAPER_THRESHOLDS",
    "PreparedDataset",
    "RUNNERS",
    "all_experiment_ids",
    "clear_cache",
    "generate_dataset",
    "prepare",
    "render_series",
    "render_table",
    "run_experiment",
]
