"""Ablation studies for design choices the paper fixes without sweeping.

Three ablations complement the main table/figure reproductions:

* **Batch size** (paper fixes 20 pairs/HIT, citing [14, 25]): sweep the HIT
  size and measure cost/latency for the transitive campaign.  Bigger HITs
  amortise pickup latency but coarsen the instant-decision reaction
  granularity.
* **Worker noise** (Table 2 uses one calibrated error profile): sweep the
  ambiguous-pair error rate and measure how Transitive and Non-Transitive
  quality degrade.  This quantifies the error-amplification story — and the
  finding that with *independent* errors deduction actually protects quality.
* **Heuristic-order gap** (the expected-optimal order is NP-hard): on random
  small instances, compare the likelihood-descending heuristic's exact
  ``E[C]`` against the brute-force optimum.
"""

from __future__ import annotations

import random
from typing import List

from ..core.expected_cost import brute_force_expected_optimal, expected_cost
from ..core.ordering import expected_order
from ..core.pairs import CandidatePair, Pair
from ..crowd.campaign import run_non_transitive, run_transitive
from ..crowd.latency import LognormalLatency
from ..crowd.platform import SimulatedPlatform
from ..crowd.worker import QualificationTest, make_worker_pool
from ..er.metrics import evaluate_labels
from .config import ExperimentConfig
from .harness import prepare
from .reporting import ExperimentResult

DEFAULT_BATCH_SIZES = (1, 5, 10, 20, 40)
DEFAULT_ERROR_RATES = (0.0, 0.1, 0.2, 0.3, 0.4)


def run_batch_size_ablation(
    config: ExperimentConfig = ExperimentConfig(),
    threshold: float = 0.3,
    batch_sizes: tuple = DEFAULT_BATCH_SIZES,
) -> ExperimentResult:
    """Sweep the pairs-per-HIT batching factor for the transitive campaign."""
    prepared = prepare(config)
    candidates = expected_order(prepared.candidates_above(threshold))
    result = ExperimentResult(
        experiment_id="ablation-batch-size",
        title=f"HIT batch-size sweep ({config.dataset}, threshold {threshold})",
        columns=["batch_size", "n_hits", "hours", "cost_usd", "crowdsourced"],
    )
    for batch_size in batch_sizes:
        workers = make_worker_pool(config.n_workers, seed=config.seed + batch_size)
        platform = SimulatedPlatform(
            workers=workers,
            truth=prepared.truth,
            likelihoods=prepared.likelihoods,
            latency=LognormalLatency(),
            batch_size=batch_size,
            n_assignments=config.n_assignments,
            seed=config.seed + batch_size,
        )
        report = run_transitive(candidates, platform, instant_decision=True)
        result.rows.append(
            {
                "batch_size": batch_size,
                "n_hits": report.n_hits,
                "hours": report.completion_hours,
                "cost_usd": report.cost,
                "crowdsourced": report.n_crowdsourced,
            }
        )
    result.notes.append(
        "bigger HITs cut the HIT count (and with per-assignment pricing, the "
        "cost scales with assignments not HITs) and amortise pickup latency; "
        "the paper fixes 20 following the batching strategies of [14, 25]"
    )
    return result


def run_worker_noise_ablation(
    config: ExperimentConfig = ExperimentConfig(),
    threshold: float = 0.3,
    error_rates: tuple = DEFAULT_ERROR_RATES,
    systematic_fraction: float = 0.7,
) -> ExperimentResult:
    """Sweep worker error rates; compare Transitive vs Non-Transitive F."""
    prepared = prepare(config)
    candidates = expected_order(prepared.candidates_above(threshold))
    result = ExperimentResult(
        experiment_id="ablation-worker-noise",
        title=f"worker-noise sensitivity ({config.dataset}, threshold {threshold})",
        columns=[
            "ambiguous_error",
            "f_non_transitive",
            "f_transitive",
            "delta_f",
        ],
    )
    for error_rate in error_rates:
        rows = {}
        for name, runner in (
            ("non_transitive", run_non_transitive),
            ("transitive", run_transitive),
        ):
            workers = make_worker_pool(
                config.n_workers,
                ambiguity_aware=True,
                base_error=error_rate / 6,
                ambiguous_error=error_rate,
                systematic_fraction=systematic_fraction,
                qualification=QualificationTest(),
                seed=config.seed + 31,
            )
            platform = SimulatedPlatform(
                workers=workers,
                truth=prepared.truth,
                likelihoods=prepared.likelihoods,
                latency=LognormalLatency(),
                batch_size=config.batch_size,
                n_assignments=config.n_assignments,
                seed=config.seed + 31,
            )
            report = runner(candidates, platform)
            rows[name] = evaluate_labels(report.labels, prepared.truth).f_measure
        result.rows.append(
            {
                "ambiguous_error": error_rate,
                "f_non_transitive": 100.0 * rows["non_transitive"],
                "f_transitive": 100.0 * rows["transitive"],
                "delta_f": 100.0 * (rows["transitive"] - rows["non_transitive"]),
            }
        )
    result.notes.append(
        "with systematic (majority-resistant) errors, deduction amplifies "
        "mistakes as noise grows; with purely independent errors "
        "(systematic_fraction=0) the transitive labeler is typically *better* "
        "than the baseline — see EXPERIMENTS.md finding 3"
    )
    return result


def run_heuristic_gap_study(
    n_instances: int = 40,
    n_objects: int = 5,
    n_pairs: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """The NP-hard expected-order problem: heuristic vs brute-force E[C].

    Generates random small candidate sets with informative likelihoods and
    measures the likelihood-descending heuristic's optimality gap exactly.
    """
    rng = random.Random(seed)
    result = ExperimentResult(
        experiment_id="ablation-heuristic-gap",
        title=f"expected-order heuristic vs brute force ({n_instances} instances)",
        columns=["statistic", "value"],
    )
    gaps: List[float] = []
    optimal_hits = 0
    for _ in range(n_instances):
        entity_of = {f"o{i}": rng.randrange(3) for i in range(n_objects)}
        objects = sorted(entity_of)
        chosen: List[CandidatePair] = []
        seen = set()
        while len(chosen) < n_pairs:
            a, b = rng.sample(objects, 2)
            pair = Pair(a, b)
            if pair in seen:
                continue
            seen.add(pair)
            matching = entity_of[a] == entity_of[b]
            likelihood = rng.uniform(0.6, 0.95) if matching else rng.uniform(0.05, 0.4)
            chosen.append(CandidatePair(pair, likelihood))
        heuristic = expected_cost(expected_order(chosen))
        _, optimum = brute_force_expected_optimal(chosen)
        gap = heuristic - optimum
        gaps.append(gap)
        if gap < 1e-9:
            optimal_hits += 1
    result.rows = [
        {"statistic": "instances", "value": n_instances},
        {"statistic": "heuristic_exactly_optimal", "value": optimal_hits},
        {"statistic": "mean_gap_pairs", "value": sum(gaps) / len(gaps)},
        {"statistic": "max_gap_pairs", "value": max(gaps)},
    ]
    result.notes.append(
        "the expected-optimal order problem is NP-hard (Vesdapunt et al.); "
        "on informative likelihoods the likelihood-descending heuristic is "
        "optimal on most instances and close elsewhere"
    )
    return result
