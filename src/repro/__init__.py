"""repro — reproduction of "Leveraging Transitive Relations for Crowdsourced
Joins" (Wang, Li, Kraska, Franklin, Feng; SIGMOD 2013).

The package implements the paper's hybrid transitive-relations +
crowdsourcing labeling framework along with every substrate its evaluation
depends on:

* ``repro.core``        — ClusterGraph deduction, labeling orders, and the
                          framework facade.
* ``repro.engine``      — the shared event-driven LabelingEngine with its
                          incremental pending-pair frontier, pluggable
                          dispatch strategies, and the async crowd runtime.
* ``repro.crowd``       — a simulated crowdsourcing platform (HIT batching,
                          assignment replication, majority voting, worker
                          accuracy and latency models, discrete-event timing)
                          plus live platform clients.
* ``repro.spec``        — :class:`CampaignSpec`, the one JSON-serialisable
                          description of a campaign accepted by every entry
                          point (engine, runtime, sync runners, the service).
* ``repro.service``     — the multi-tenant campaign host: durable answer
                          journals, crash recovery by replay, and an HTTP
                          control API.
* ``repro.matcher``     — machine-based candidate generation: tokenizers,
                          similarity functions, blocking, likelihoods.
* ``repro.datasets``    — synthetic Cora-like ("Paper") and Abt-Buy-like
                          ("Product") dataset generators.
* ``repro.er``          — entity-resolution clustering and quality metrics.
* ``repro.experiments`` — one runner per paper table/figure.
* ``repro.ext``         — extensions from the paper's future-work list.

Quickstart::

    from repro import CampaignSpec, LabelingEngine, GroundTruthOracle

    spec = CampaignSpec(order=[("iPad 2", "iPad two"), ...], mode="instant")
    engine = spec.build_engine()          # or run a campaign:
    # service = CampaignService("campaigns/"); await service.create(spec)

Migration from the pre-spec labeler facades (each emits a
:class:`DeprecationWarning`; full table in ``docs/service.md``):

========================  ====================================================
Deprecated                Replacement
========================  ====================================================
``SequentialLabeler``     ``SequentialDispatch(spec=CampaignSpec(mode="sequential", ...))``
``ParallelLabeler``       ``RoundParallelDispatch(spec=CampaignSpec(mode="rounds", ...))``
``InstantLabeler``        ``InstantDispatch(spec=CampaignSpec(mode="instant", ...))``
========================  ====================================================
"""

from .core import (
    AnswerPolicy,
    CandidatePair,
    ClusterGraph,
    ConflictPolicy,
    CountingOracle,
    ExpectedOrderSorter,
    FrameworkRun,
    GroundTruthOracle,
    InstantLabeler,
    Label,
    LabeledPair,
    LabelingResult,
    NoisyOracle,
    OptimalOrderSorter,
    Pair,
    ParallelLabeler,
    Provenance,
    RandomOrderSorter,
    SequentialLabeler,
    TransitiveJoinFramework,
    UnionFind,
    WorstOrderSorter,
    candidate,
    deduce_label,
    expected_cost,
    expected_order,
    label_baseline,
    label_parallel,
    label_sequential,
    label_with_transitivity,
    make_pair,
    optimal_order,
)

# Imported after .core: the engine's dispatch strategies are re-imported by
# the core labeler facades, so repro.core must finish initialising first.
from .engine import (
    AsyncDispatch,
    CrowdRuntime,
    DispatchStrategy,
    EngineBackend,
    ExpectedValueDispatch,
    HITDispatchAdapter,
    InstantDispatch,
    LabelingEngine,
    PauseGate,
    RoundParallelDispatch,
    RuntimeMode,
    RuntimeReport,
    SequentialDispatch,
    must_crowdsource_frontier,
)
from .crowd.aggregation import WeightedAggregation, WorkerAccuracyTracker
from .crowd.budget import BudgetPolicy, CostModel
from .crowd.review import ApproveAll, EscalateOnLowConfidence, ReviewPolicy
from .crowd.latency import TimeoutPolicy
from .spec import (
    AggregationConfig,
    CampaignSpec,
    JournalConfig,
    PlatformConfig,
    SpecError,
)
from .service import (
    CampaignHTTPServer,
    CampaignService,
    CampaignState,
    Journal,
    JournalCorruptError,
    JournalingPlatformClient,
)

__version__ = "1.0.0"

#: The curated public API.  Everything here is stable; the pre-spec labeler
#: facades (``SequentialLabeler`` & co.) remain importable for compatibility
#: but are deprecated and intentionally absent from ``__all__``.
__all__ = [
    # the one campaign description
    "CampaignSpec",
    "AggregationConfig",
    "JournalConfig",
    "PlatformConfig",
    "SpecError",
    # the engine and its runtime
    "LabelingEngine",
    "EngineBackend",
    "CrowdRuntime",
    "RuntimeMode",
    "PauseGate",
    # dispatch strategies (spec-aware synchronous runners)
    "AsyncDispatch",
    "DispatchStrategy",
    "SequentialDispatch",
    "RoundParallelDispatch",
    "InstantDispatch",
    "ExpectedValueDispatch",
    # the campaign service layer
    "CampaignService",
    "CampaignState",
    "CampaignHTTPServer",
    "Journal",
    "JournalCorruptError",
    "JournalingPlatformClient",
    # campaign policies
    "BudgetPolicy",
    "CostModel",
    "TimeoutPolicy",
    "ReviewPolicy",
    "ApproveAll",
    "EscalateOnLowConfidence",
    "WeightedAggregation",
    "WorkerAccuracyTracker",
    # core vocabulary
    "Pair",
    "CandidatePair",
    "Label",
    "LabeledPair",
    "Provenance",
    "ClusterGraph",
    "ConflictPolicy",
    "LabelingResult",
    "UnionFind",
    "deduce_label",
    "make_pair",
    "candidate",
    "must_crowdsource_frontier",
    # oracles, orders, and the framework facade
    "GroundTruthOracle",
    "NoisyOracle",
    "CountingOracle",
    "AnswerPolicy",
    "ExpectedOrderSorter",
    "OptimalOrderSorter",
    "RandomOrderSorter",
    "WorstOrderSorter",
    "expected_cost",
    "expected_order",
    "optimal_order",
    "TransitiveJoinFramework",
    "FrameworkRun",
    "label_with_transitivity",
    "label_baseline",
    "HITDispatchAdapter",
    "RuntimeReport",
    "__version__",
]
