"""repro — reproduction of "Leveraging Transitive Relations for Crowdsourced
Joins" (Wang, Li, Kraska, Franklin, Feng; SIGMOD 2013).

The package implements the paper's hybrid transitive-relations +
crowdsourcing labeling framework along with every substrate its evaluation
depends on:

* ``repro.core``        — ClusterGraph deduction, labeling orders, the
                          sequential/parallel/instant labelers, and the
                          framework facade.
* ``repro.engine``      — the shared event-driven LabelingEngine with its
                          incremental pending-pair frontier and pluggable
                          dispatch strategies (the labelers above are thin
                          facades over it).
* ``repro.crowd``       — a simulated crowdsourcing platform (HIT batching,
                          assignment replication, majority voting, worker
                          accuracy and latency models, discrete-event timing).
* ``repro.matcher``     — machine-based candidate generation: tokenizers,
                          similarity functions, blocking, likelihoods.
* ``repro.datasets``    — synthetic Cora-like ("Paper") and Abt-Buy-like
                          ("Product") dataset generators.
* ``repro.er``          — entity-resolution clustering and quality metrics.
* ``repro.experiments`` — one runner per paper table/figure.
* ``repro.ext``         — extensions from the paper's future-work list.

Quickstart::

    from repro import (CandidatePair, GroundTruthOracle, Pair,
                       TransitiveJoinFramework)

    candidates = [CandidatePair(Pair("iPad 2", "iPad two"), 0.9), ...]
    oracle = GroundTruthOracle({"iPad 2": 1, "iPad two": 1, ...})
    run = TransitiveJoinFramework(labeler="parallel").label(candidates, oracle)
    print(run.result.n_crowdsourced, "pairs asked,",
          run.result.n_deduced, "deduced for free")
"""

from .core import (
    AnswerPolicy,
    CandidatePair,
    ClusterGraph,
    ConflictPolicy,
    CountingOracle,
    ExpectedOrderSorter,
    FrameworkRun,
    GroundTruthOracle,
    InstantLabeler,
    Label,
    LabeledPair,
    LabelingResult,
    NoisyOracle,
    OptimalOrderSorter,
    Pair,
    ParallelLabeler,
    Provenance,
    RandomOrderSorter,
    SequentialLabeler,
    TransitiveJoinFramework,
    UnionFind,
    WorstOrderSorter,
    candidate,
    deduce_label,
    expected_cost,
    expected_order,
    label_baseline,
    label_parallel,
    label_sequential,
    label_with_transitivity,
    make_pair,
    optimal_order,
)

# Imported after .core: the engine's dispatch strategies are re-imported by
# the core labeler facades, so repro.core must finish initialising first.
from .engine import (
    AsyncDispatch,
    CrowdRuntime,
    DispatchStrategy,
    HITDispatchAdapter,
    InstantDispatch,
    LabelingEngine,
    RoundParallelDispatch,
    RuntimeMode,
    RuntimeReport,
    SequentialDispatch,
    must_crowdsource_frontier,
)

__version__ = "1.0.0"

__all__ = [
    "AnswerPolicy",
    "AsyncDispatch",
    "CandidatePair",
    "ClusterGraph",
    "ConflictPolicy",
    "CountingOracle",
    "CrowdRuntime",
    "DispatchStrategy",
    "ExpectedOrderSorter",
    "FrameworkRun",
    "GroundTruthOracle",
    "HITDispatchAdapter",
    "InstantDispatch",
    "InstantLabeler",
    "LabelingEngine",
    "Label",
    "LabeledPair",
    "LabelingResult",
    "NoisyOracle",
    "OptimalOrderSorter",
    "Pair",
    "ParallelLabeler",
    "Provenance",
    "RandomOrderSorter",
    "RoundParallelDispatch",
    "RuntimeMode",
    "RuntimeReport",
    "SequentialDispatch",
    "SequentialLabeler",
    "TransitiveJoinFramework",
    "UnionFind",
    "WorstOrderSorter",
    "__version__",
    "candidate",
    "deduce_label",
    "expected_cost",
    "expected_order",
    "label_baseline",
    "label_parallel",
    "label_sequential",
    "label_with_transitivity",
    "make_pair",
    "must_crowdsource_frontier",
    "optimal_order",
]
