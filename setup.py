"""Setup shim.

The canonical project metadata lives in pyproject.toml.  This file exists so
that environments without the ``wheel`` package (where PEP 517 editable
installs fail with "invalid command 'bdist_wheel'") can still install with::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
