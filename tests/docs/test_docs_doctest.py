"""The documented snippets must run: doctest over every docs/*.md.

Same check the CI ``docs`` job runs via ``python -m doctest``; living in
tier-1 too means a drifted doc fails on a laptop before a PR is pushed.
Any line starting with ``>>>`` in the docs is an executable example —
keep non-runnable illustrations in plain fenced blocks without prompts.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

DOCS = sorted((Path(__file__).resolve().parent.parent.parent / "docs").glob("*.md"))


def test_docs_exist():
    assert [p.name for p in DOCS] == [
        "backends.md",
        "crowd.md",
        "engine.md",
        "index.md",
        "service.md",
    ]


@pytest.mark.parametrize("page", DOCS, ids=lambda p: p.name)
def test_docs_doctests_pass(page):
    results = doctest.testfile(
        str(page),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    assert results.failed == 0, f"{page.name}: {results.failed} doctest failure(s)"


def test_docs_have_executable_examples():
    """At least the pages that advertise doctests actually carry some —
    an empty doctest run passes vacuously, which is exactly the rot this
    job exists to prevent."""
    parser = doctest.DocTestParser()
    with_examples = {
        page.name
        for page in DOCS
        if parser.get_examples(page.read_text(), page.name)
    }
    assert {"backends.md", "crowd.md", "index.md"} <= with_examples
