"""Explicit event-loop runner for async tests.

The suite deliberately does not depend on ``pytest-asyncio`` being
importable (the tier-1 environment is dependency-light); async tests call
:func:`run_async` instead, which gives every awaited scenario its own fresh
event loop *and a hard timeout* — a stalled await fails fast with a clear
error instead of hanging the tier-1 job.  CI additionally installs
``pytest-asyncio`` / ``pytest-timeout`` (see the test extras in
``pyproject.toml``) for a process-level backstop.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import Awaitable, Iterator, TypeVar

T = TypeVar("T")

#: Generous per-test ceiling: every scenario in the suite finishes in
#: milliseconds; only a genuinely stalled await ever gets near this.
ASYNC_TEST_TIMEOUT_S = 30.0


def run_async(coro: Awaitable[T], timeout: float = ASYNC_TEST_TIMEOUT_S) -> T:
    """Run ``coro`` on a fresh event loop, failing after ``timeout``s."""

    async def _guarded() -> T:
        return await asyncio.wait_for(coro, timeout)

    return asyncio.run(_guarded())


class BackgroundLoop:
    """An event loop running on a daemon thread, for serving async peers.

    The distributed-backend suite drives a *synchronous* coordinator against
    an *asyncio* :class:`repro.engine.distributed.ShardWorkerHost`; the host
    needs a live loop while the test thread blocks on sockets.  ``submit``
    schedules a coroutine on the loop and returns its
    :class:`concurrent.futures.Future`; ``run`` additionally waits for the
    result with the suite's standard timeout.
    """

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._serve, name="aio-background-loop", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def submit(self, coro: Awaitable[T]) -> "asyncio.Future[T]":
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def run(self, coro: Awaitable[T], timeout: float = ASYNC_TEST_TIMEOUT_S) -> T:
        return self.submit(coro).result(timeout)

    def close(self) -> None:
        if self.loop.is_closed():
            return
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(ASYNC_TEST_TIMEOUT_S)
        # Cancel whatever is still pending (e.g. a serve_forever task) so
        # closing the loop doesn't warn about destroyed pending tasks.
        for task in asyncio.all_tasks(self.loop):
            task.cancel()
        self.loop.run_until_complete(self.loop.shutdown_asyncgens())
        self.loop.close()


@contextlib.contextmanager
def background_loop() -> Iterator[BackgroundLoop]:
    """Context manager: a :class:`BackgroundLoop` torn down on exit."""
    loop = BackgroundLoop()
    try:
        yield loop
    finally:
        loop.close()
