"""Explicit event-loop runner for async tests.

The suite deliberately does not depend on ``pytest-asyncio`` being
importable (the tier-1 environment is dependency-light); async tests call
:func:`run_async` instead, which gives every awaited scenario its own fresh
event loop *and a hard timeout* — a stalled await fails fast with a clear
error instead of hanging the tier-1 job.  CI additionally installs
``pytest-asyncio`` / ``pytest-timeout`` (see the test extras in
``pyproject.toml``) for a process-level backstop.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, TypeVar

T = TypeVar("T")

#: Generous per-test ceiling: every scenario in the suite finishes in
#: milliseconds; only a genuinely stalled await ever gets near this.
ASYNC_TEST_TIMEOUT_S = 30.0


def run_async(coro: Awaitable[T], timeout: float = ASYNC_TEST_TIMEOUT_S) -> T:
    """Run ``coro`` on a fresh event loop, failing after ``timeout``s."""

    async def _guarded() -> T:
        return await asyncio.wait_for(coro, timeout)

    return asyncio.run(_guarded())
