"""Test package (enables the relative imports of tests.strategies)."""
