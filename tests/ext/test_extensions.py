"""Tests for the future-work extensions: one-to-one, budget, auditing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster_graph import ClusterGraph, ConflictPolicy
from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.core.parallel import parallel_crowdsourced_pairs
from repro.core.sequential import label_sequential
from repro.er.metrics import evaluate_labels
from repro.ext.budget import coverage_curve, label_with_budget
from repro.ext.one_to_one import OneToOneClusterGraph, label_sequential_one_to_one
from repro.ext.voting import DeductionAuditor, FreshNoisyOracle, audit_deductions

from ..strategies import worlds


def bipartite_world(n_entities: int):
    """A strict 1-1 bipartite world: entity i has records ai and bi."""
    entity_of = {}
    source_of = {}
    for i in range(n_entities):
        entity_of[f"a{i}"] = i
        entity_of[f"b{i}"] = i
        source_of[f"a{i}"] = "A"
        source_of[f"b{i}"] = "B"
    return entity_of, source_of


class TestOneToOneGraph:
    def test_match_occupies_source(self):
        _, source_of = bipartite_world(3)
        graph = OneToOneClusterGraph(source_of)
        graph.add(Pair("a0", "b0"), Label.MATCHING)
        assert graph.deduce(Pair("a0", "b1")) is Label.NON_MATCHING
        assert graph.deduce(Pair("b0", "a1")) is Label.NON_MATCHING

    def test_transitive_deduction_still_works(self):
        _, source_of = bipartite_world(3)
        graph = OneToOneClusterGraph(source_of)
        graph.add(Pair("a0", "b0"), Label.MATCHING)
        assert graph.deduce(Pair("a0", "b0")) is Label.MATCHING

    def test_no_rule_for_unknown_objects(self):
        _, source_of = bipartite_world(3)
        graph = OneToOneClusterGraph(source_of)
        assert graph.deduce(Pair("a0", "b0")) is None

    def test_no_rule_for_same_source(self):
        _, source_of = bipartite_world(3)
        graph = OneToOneClusterGraph(source_of)
        graph.add(Pair("a0", "b0"), Label.MATCHING)
        assert graph.deduce(Pair("a0", "a1")) is None

    def test_occupancy_survives_merges(self):
        """Occupancy must follow clusters through chained matching inserts."""
        source_of = {"a0": "A", "x": "C", "b0": "B", "b5": "B"}
        graph = OneToOneClusterGraph(source_of)
        graph.add(Pair("a0", "x"), Label.MATCHING)
        graph.add(Pair("x", "b0"), Label.MATCHING)
        # cluster {a0, x, b0} occupies A, B, C; b5 is a different B record
        assert graph.deduce(Pair("a0", "b5")) is Label.NON_MATCHING
        assert graph.deduce(Pair("x", "b5")) is Label.NON_MATCHING

    def test_sourceless_records_never_trigger(self):
        graph = OneToOneClusterGraph({})
        graph.add(Pair("a0", "b0"), Label.MATCHING)
        assert graph.deduce(Pair("a0", "b1")) is None

    def test_base_graph_exposed(self):
        _, source_of = bipartite_world(2)
        graph = OneToOneClusterGraph(source_of)
        graph.add(Pair("a0", "b0"), Label.MATCHING)
        assert graph.base_graph.n_clusters == 1


class TestOneToOneLabeler:
    def test_saves_over_plain_sequential(self):
        entity_of, source_of = bipartite_world(4)
        truth = GroundTruthOracle(entity_of)
        order = [Pair(f"a{i}", f"b{j}") for i in range(4) for j in range(4)]
        plain = label_sequential(order, truth)
        one_to_one = label_sequential_one_to_one(order, truth, source_of)
        # in a dense 1-1 grid the saving must be strict
        assert one_to_one.n_crowdsourced < plain.n_crowdsourced

    def test_labels_correct_on_one_to_one_truth(self):
        entity_of, source_of = bipartite_world(4)
        truth = GroundTruthOracle(entity_of)
        order = [Pair(f"a{i}", f"b{j}") for i in range(4) for j in range(4)]
        result = label_sequential_one_to_one(order, truth, source_of)
        for pair, label in result.labels().items():
            assert label is truth.label(pair)

    @given(st.integers(2, 6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_never_worse_than_plain_and_always_correct(self, n_entities, seed):
        import random

        entity_of, source_of = bipartite_world(n_entities)
        truth = GroundTruthOracle(entity_of)
        order = [
            Pair(f"a{i}", f"b{j}")
            for i in range(n_entities)
            for j in range(n_entities)
        ]
        random.Random(seed).shuffle(order)
        plain = label_sequential(order, truth)
        one_to_one = label_sequential_one_to_one(order, truth, source_of)
        assert one_to_one.n_crowdsourced <= plain.n_crowdsourced
        for pair, label in one_to_one.labels().items():
            assert label is truth.label(pair)

    def test_unsound_on_multi_record_sources(self):
        """Applying the rule where an entity has two records in one source
        produces a wrong deduction — the documented trade-off."""
        entity_of = {"a0": 0, "a1": 0, "b0": 0}  # a0, a1 both in source A
        source_of = {"a0": "A", "a1": "A", "b0": "B"}
        truth = GroundTruthOracle(entity_of)
        order = [Pair("a0", "b0"), Pair("a1", "b0")]
        result = label_sequential_one_to_one(order, truth, source_of)
        # (a1, b0) is truly matching but the rule deduces non-matching
        assert result.label_of(Pair("a1", "b0")) is Label.NON_MATCHING
        assert truth.label(Pair("a1", "b0")) is Label.MATCHING


class TestBudget:
    @pytest.fixture
    def world(self):
        entity_of = {"a": 1, "b": 1, "c": 1, "d": 2, "e": 2}
        order = [
            Pair("a", "b"),
            Pair("b", "c"),
            Pair("a", "c"),
            Pair("d", "e"),
            Pair("a", "d"),
        ]
        return GroundTruthOracle(entity_of), order

    def test_zero_budget_resolves_nothing(self, world):
        truth, order = world
        result = label_with_budget(order, truth, budget=0)
        assert result.result.n_pairs == 0
        assert len(result.unresolved) == len(order)
        assert result.coverage == 0.0

    def test_unlimited_budget_resolves_everything(self, world):
        truth, order = world
        result = label_with_budget(order, truth, budget=len(order))
        assert result.coverage == 1.0
        assert not result.unresolved

    def test_deduction_stretches_budget(self, world):
        truth, order = world
        result = label_with_budget(order, truth, budget=2)
        # two questions (a,b), (b,c) resolve (a,c) for free
        assert result.result.n_pairs == 3
        assert result.pairs_per_question == pytest.approx(1.5)

    def test_negative_budget_rejected(self, world):
        truth, order = world
        with pytest.raises(ValueError):
            label_with_budget(order, truth, budget=-1)

    def test_coverage_curve_is_monotone(self, world):
        truth, order = world
        curve = coverage_curve(order, truth, budgets=[0, 1, 2, 3, 4, 5])
        values = [curve[budget] for budget in sorted(curve)]
        assert values == sorted(values)
        assert values[-1] == 1.0

    @given(worlds(max_objects=8, max_pairs=14), st.integers(0, 14))
    @settings(max_examples=30)
    def test_labels_within_budget_are_correct(self, world, budget):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        result = label_with_budget(candidates, truth, budget=budget)
        assert result.result.n_crowdsourced <= budget
        for pair, label in result.result.labels().items():
            assert label is truth.label(pair)

    @given(worlds(max_objects=8, max_pairs=14))
    @settings(max_examples=30)
    def test_coverage_monotone_in_budget(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        budgets = list(range(len(candidates) + 1))
        curve = coverage_curve(candidates, truth, budgets=budgets)
        values = [curve[budget] for budget in budgets]
        assert values == sorted(values)


class TestConflictImpossibility:
    """Reproduction finding: under the sound parallel selection rule, a
    crowd answer can never contradict the deduction graph at insert time —
    even with arbitrarily wrong answers.  This is why errors get baked in
    silently and why auditing needs deliberate redundancy."""

    @given(worlds(max_objects=9, max_pairs=18), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_no_insert_time_conflict_even_with_noise(self, world, seed):
        candidates, entity_of = world
        if not candidates:
            return
        truth = GroundTruthOracle(entity_of)
        noisy = FreshNoisyOracle(truth, error_rate=0.4, seed=seed)
        pairs = [c.pair for c in candidates]
        labeled = {}
        graph = ClusterGraph(policy=ConflictPolicy.FIRST_WINS)
        remaining = list(pairs)
        for _ in range(len(pairs) + 1):
            if not remaining:
                break
            batch = parallel_crowdsourced_pairs(pairs, labeled)
            for pair in batch:
                answer = noisy.label(pair)
                implied = graph.deduce(pair)
                assert implied is None, (
                    f"published pair {pair!r} had an implied label at insert time"
                )
                labeled[pair] = answer
                graph.add(pair, answer)
            remaining = [
                p for p in remaining if p not in labeled and graph.deduce(p) is None
            ]
            for pair in list(remaining):
                deduced = graph.deduce(pair)
                if deduced is not None:
                    labeled[pair] = deduced
            remaining = [p for p in remaining if p not in labeled]
        assert not graph.conflicts


class TestAuditing:
    def make_noisy_run(self, error_rate=0.3, seed=7):
        entity_of = {f"o{i}": i // 5 for i in range(20)}
        truth = GroundTruthOracle(entity_of)
        order = [
            Pair(f"o{i}", f"o{j}")
            for i in range(20)
            for j in range(i + 1, 20)
            if i // 5 == j // 5 or (i * j) % 7 == 0
        ]
        noisy = FreshNoisyOracle(truth, error_rate=error_rate, seed=seed)
        from repro.core.cluster_graph import ConflictPolicy
        from repro.core.sequential import SequentialLabeler

        result = SequentialLabeler(policy=ConflictPolicy.FIRST_WINS).run(order, noisy)
        return result, truth, noisy

    def test_perfect_oracle_finds_no_disagreements(self):
        entity_of = {"a": 1, "b": 1, "c": 1}
        truth = GroundTruthOracle(entity_of)
        result = label_sequential(
            [Pair("a", "b"), Pair("b", "c"), Pair("a", "c")], truth
        )
        report = audit_deductions(result, truth, fraction=1.0, votes=3)
        assert report.audited  # (a, c) was deduced
        assert not report.disagreements
        assert report.disagreement_rate == 0.0

    def test_audit_samples_requested_fraction(self):
        result, truth, noisy = self.make_noisy_run()
        report = audit_deductions(result, noisy, fraction=0.5, votes=3, seed=1)
        assert len(report.audited) == max(1, round(result.n_deduced * 0.5))
        assert report.extra_queries == len(report.audited) * 3

    def test_audit_improves_quality_under_noise(self):
        result, truth, noisy = self.make_noisy_run(error_rate=0.3, seed=11)
        before = evaluate_labels(result.labels(), truth)
        report = audit_deductions(result, noisy, fraction=1.0, votes=5, seed=2)
        after = evaluate_labels(report.repaired_labels, truth)
        assert after.f_measure >= before.f_measure

    def test_repaired_labels_cover_every_pair(self):
        result, truth, noisy = self.make_noisy_run()
        report = audit_deductions(result, noisy, fraction=0.3, votes=3)
        assert set(report.repaired_labels) == set(result.labels())

    def test_zero_fraction_audits_one_pair_at_most(self):
        result, truth, noisy = self.make_noisy_run()
        report = audit_deductions(result, noisy, fraction=0.0, votes=3)
        assert len(report.audited) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeductionAuditor(fraction=1.5)
        with pytest.raises(ValueError):
            DeductionAuditor(votes=0)
        with pytest.raises(ValueError):
            FreshNoisyOracle(GroundTruthOracle({}), error_rate=2.0)

    def test_fresh_oracle_rerolls(self):
        truth = GroundTruthOracle({"a": 1, "b": 1})
        noisy = FreshNoisyOracle(truth, error_rate=0.5, seed=3)
        answers = {noisy.label(Pair("a", "b")) for _ in range(40)}
        assert len(answers) == 2
        assert noisy.n_queries == 40
