"""Every offline example must run end-to-end and exit zero.

The examples are the repo's executable documentation — each one is run
here as a real subprocess (fresh interpreter, same invocation a reader
would type), so a drifted import, a broken campaign, or a failure that
the example's own exit-code checks catch turns CI red instead of rotting
silently.  ``mturk_campaign.py`` runs in replay mode, which additionally
pins the committed cassette to the campaign code path.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES = REPO_ROOT / "examples"

#: (script, substring its stdout must contain).  Every entry runs offline.
OFFLINE_EXAMPLES = [
    ("quickstart.py", "deduced for free"),
    ("bibliography_dedup.py", "duplicate groups"),
    ("product_catalog_join.py", "F-measure"),
    ("crowd_campaign.py", "audit"),
    ("expected_cost_analysis.py", "Heuristic vs brute force"),
    ("async_campaign.py", "async campaign over PollingPlatformClient"),
    ("distributed_campaign.py", "distributed campaign over TCP shard workers"),
    ("mturk_campaign.py", "transitive-join campaign over MTurkBackend"),
    ("service_campaign.py", "campaign service over HTTP"),
]


def run_example(script: str, *argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *argv],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
        env=env,
    )


def test_examples_directory_is_fully_covered():
    """A new example must be added to OFFLINE_EXAMPLES (or explicitly
    excluded here) — the smoke list cannot silently fall behind."""
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == {name for name, _ in OFFLINE_EXAMPLES}


@pytest.mark.parametrize("script,expected", OFFLINE_EXAMPLES)
def test_example_runs_clean(script, expected):
    proc = run_example(script)
    assert proc.returncode == 0, (
        f"{script} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )
    assert expected in proc.stdout


def test_mturk_campaign_replay_is_the_default_mode():
    proc = run_example("mturk_campaign.py")
    assert proc.returncode == 0, proc.stderr
    assert "mode: REPLAY" in proc.stdout
    assert "labels correct" in proc.stdout
    # The replay consumed the committed cassette fully: the campaign made
    # exactly the recorded number of backend calls.
    assert "CAMPAIGN FAILED" not in proc.stderr
