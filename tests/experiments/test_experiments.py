"""Small-scale smoke + shape tests for every table/figure runner.

Each paper experiment is run at a reduced dataset scale and checked for the
*shape* properties the paper reports (who wins, monotonicity, orderings) —
the full-scale numbers live in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import prepare
from repro.experiments.registry import all_experiment_ids, run_experiment
from repro.experiments.reporting import ExperimentResult, render_series, render_table
from repro.experiments import (
    fig10_cluster_sizes,
    fig11_transitive_effectiveness,
    fig12_labeling_orders,
    fig13_14_parallel_iterations,
    fig15_optimizations,
    table1_completion_time,
    table2_quality,
)

SCALE = 0.18
THRESHOLDS = (0.5, 0.3, 0.1)


def config(dataset: str) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=dataset, scale=SCALE, thresholds=THRESHOLDS, n_workers=12
    )


@pytest.fixture(scope="module")
def paper_config():
    cfg = config("paper")
    prepare(cfg)  # warm the cache once for the module
    return cfg


@pytest.fixture(scope="module")
def product_config():
    cfg = config("product")
    prepare(cfg)
    return cfg


class TestConfig:
    def test_rejects_unknown_dataset(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dataset="imdb")

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(scale=1.5)

    def test_rejects_thresholds_below_base(self):
        with pytest.raises(ValueError):
            ExperimentConfig(base_threshold=0.3, thresholds=(0.2,))

    def test_with_dataset(self):
        cfg = ExperimentConfig(dataset="paper").with_dataset("product")
        assert cfg.dataset == "product"


class TestHarness:
    def test_prepare_is_cached(self, paper_config):
        assert prepare(paper_config) is prepare(paper_config)

    def test_candidates_sorted_by_likelihood(self, paper_config):
        prepared = prepare(paper_config)
        likelihoods = [c.likelihood for c in prepared.candidates]
        assert likelihoods == sorted(likelihoods, reverse=True)

    def test_rethresholding(self, paper_config):
        prepared = prepare(paper_config)
        strict = prepared.candidates_above(0.5)
        loose = prepared.candidates_above(0.3)
        assert len(strict) <= len(loose)
        assert all(c.likelihood > 0.5 for c in strict)


class TestFigure10:
    def test_paper_histogram_has_heavy_tail(self, paper_config):
        result = fig10_cluster_sizes.run(paper_config)
        sizes = result.series["cluster_sizes"]
        assert max(sizes) >= 30  # scaled Cora keeps a large cluster

    def test_product_histogram_is_tiny_clusters(self, product_config):
        result = fig10_cluster_sizes.run(product_config)
        assert max(result.series["cluster_sizes"]) <= 6

    def test_counts_sum_to_entities(self, paper_config):
        result = fig10_cluster_sizes.run(paper_config)
        from repro.experiments.harness import generate_dataset

        dataset = generate_dataset(paper_config)
        assert sum(result.series["cluster_counts"]) == len(dataset.clusters())


class TestFigure11:
    def test_transitive_never_exceeds_baseline(self, paper_config):
        result = fig11_transitive_effectiveness.run(paper_config)
        for row in result.rows:
            assert row["transitive"] <= row["non_transitive"]

    def test_paper_savings_are_large(self, paper_config):
        result = fig11_transitive_effectiveness.run(paper_config)
        row = result.row_lookup(threshold=0.3)
        assert row["savings_pct"] > 80.0

    def test_product_savings_are_modest_and_grow(self, product_config):
        result = fig11_transitive_effectiveness.run(product_config)
        by_threshold = {row["threshold"]: row["savings_pct"] for row in result.rows}
        assert by_threshold[0.5] < 10.0
        assert by_threshold[0.1] > by_threshold[0.5]
        assert by_threshold[0.1] < 60.0

    def test_candidates_grow_as_threshold_drops(self, paper_config):
        result = fig11_transitive_effectiveness.run(paper_config)
        counts = result.series["non_transitive"]
        assert counts == sorted(counts)


class TestFigure12:
    def test_order_hierarchy(self, paper_config):
        """Optimal <= expected <= worst and optimal <= random <= worst."""
        result = fig12_labeling_orders.run(paper_config)
        for row in result.rows:
            assert row["optimal"] <= row["expected"] + 1e-9
            assert row["optimal"] <= row["random"]
            assert row["random"] <= row["worst"] * 1.05
            assert row["expected"] <= row["worst"]

    def test_worst_blows_up_at_low_threshold(self, paper_config):
        result = fig12_labeling_orders.run(paper_config)
        row = result.row_lookup(threshold=0.1)
        assert row["worst"] > 3 * row["optimal"]


class TestFigures13And14:
    def test_parallel_rounds_are_front_loaded(self, paper_config):
        result = fig13_14_parallel_iterations.run(paper_config, threshold=0.3)
        sizes = result.series["parallel_round_sizes"]
        assert sizes[0] == max(sizes)
        assert sizes[0] > sum(sizes) / 2

    def test_far_fewer_rounds_than_pairs(self, paper_config):
        result = fig13_14_parallel_iterations.run(paper_config, threshold=0.3)
        sizes = result.series["parallel_round_sizes"]
        assert len(sizes) < sum(sizes) / 5

    def test_figure14_uses_threshold_04(self, paper_config):
        result = fig13_14_parallel_iterations.run(paper_config, threshold=0.4)
        assert result.experiment_id == "figure14"


class TestFigure15:
    def test_id_reduces_starvation(self, product_config):
        result = fig15_optimizations.run(product_config, threshold=0.3)
        plain = result.row_lookup(variant="parallel")
        with_id = result.row_lookup(variant="parallel_id")
        assert with_id["starvation_events"] <= plain["starvation_events"]

    def test_same_crowdsourced_across_variants(self, product_config):
        result = fig15_optimizations.run(product_config, threshold=0.3)
        counts = {row["crowdsourced"] for row in result.rows}
        assert len(counts) == 1

    def test_nf_has_highest_mean_availability(self, product_config):
        result = fig15_optimizations.run(product_config, threshold=0.3)
        nf = result.row_lookup(variant="parallel_id_nf")["mean_available"]
        plain = result.row_lookup(variant="parallel")["mean_available"]
        assert nf >= plain


class TestTable1:
    def test_parallel_is_faster_same_cost(self, paper_config):
        result = table1_completion_time.run(paper_config, threshold=0.3)
        non_parallel = result.row_lookup(strategy="non_parallel")
        parallel = result.row_lookup(strategy="parallel_id")
        assert parallel["hours"] < non_parallel["hours"]
        assert parallel["n_hits"] == non_parallel["n_hits"]
        assert parallel["cost_usd"] == pytest.approx(non_parallel["cost_usd"])


class TestTable2:
    def test_transitive_saves_hits_on_paper(self, paper_config):
        result = table2_quality.run(paper_config, threshold=0.3)
        non_transitive = result.row_lookup(strategy="non_transitive")
        transitive = result.row_lookup(strategy="transitive")
        assert transitive["n_hits"] < non_transitive["n_hits"] * 0.3
        assert transitive["f_measure"] > 50.0  # quality loss is bounded

    def test_quality_columns_are_percentages(self, paper_config):
        result = table2_quality.run(paper_config, threshold=0.3)
        for row in result.rows:
            for column in ("precision", "recall", "f_measure"):
                assert 0.0 <= row[column] <= 100.0


class TestRegistryAndReporting:
    def test_registry_covers_all_paper_results(self):
        paper_ids = [
            "figure10",
            "figure11",
            "figure12",
            "figure13",
            "figure14",
            "figure15",
            "table1",
            "table2",
        ]
        assert all_experiment_ids()[: len(paper_ids)] == paper_ids
        ablation_ids = all_experiment_ids()[len(paper_ids) :]
        assert ablation_ids and all(i.startswith("ablation-") for i in ablation_ids)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_run_experiment_dispatches(self, paper_config):
        result = run_experiment("figure10", paper_config)
        assert result.experiment_id == "figure10"

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 10}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "10" in lines[3]
        assert "-" in lines[3]  # missing cell placeholder

    def test_render_series_wraps(self):
        text = render_series("xs", list(range(30)), per_line=10)
        assert text.count("\n") == 3

    def test_result_render_includes_notes(self):
        result = ExperimentResult("figure0", "demo", columns=["x"], rows=[{"x": 1}])
        result.notes.append("hello note")
        assert "hello note" in result.render()

    def test_row_lookup_raises_on_miss(self):
        result = ExperimentResult("figure0", "demo", columns=["x"], rows=[{"x": 1}])
        with pytest.raises(KeyError):
            result.row_lookup(x=2)
