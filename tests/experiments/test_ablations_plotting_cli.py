"""Tests for the ablation studies, ASCII plotting, and the CLI."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_batch_size_ablation,
    run_heuristic_gap_study,
    run_worker_noise_ablation,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import prepare
from repro.experiments.plotting import ascii_plot, plot_histogram, plot_series
from repro.experiments.__main__ import main as cli_main
from repro.experiments.registry import paper_experiment_ids


SCALE = 0.15


@pytest.fixture(scope="module")
def small_config():
    cfg = ExperimentConfig(
        dataset="paper", scale=SCALE, thresholds=(0.5, 0.3), n_workers=10
    )
    prepare(cfg)
    return cfg


class TestBatchSizeAblation:
    def test_bigger_hits_fewer_hits(self, small_config):
        result = run_batch_size_ablation(
            small_config, threshold=0.3, batch_sizes=(1, 10, 40)
        )
        hits = [row["n_hits"] for row in result.rows]
        assert hits == sorted(hits, reverse=True)

    def test_crowdsourced_count_stable_across_batching(self, small_config):
        """Batching changes packaging, not which pairs get asked (up to
        reaction-granularity noise)."""
        result = run_batch_size_ablation(
            small_config, threshold=0.3, batch_sizes=(5, 20)
        )
        counts = [row["crowdsourced"] for row in result.rows]
        assert max(counts) <= min(counts) * 1.2


class TestWorkerNoiseAblation:
    def test_quality_degrades_with_noise(self, small_config):
        result = run_worker_noise_ablation(
            small_config, threshold=0.3, error_rates=(0.0, 0.3)
        )
        clean = result.row_lookup(ambiguous_error=0.0)
        noisy = result.row_lookup(ambiguous_error=0.3)
        assert clean["f_non_transitive"] == pytest.approx(100.0)
        assert clean["f_transitive"] == pytest.approx(100.0)
        assert noisy["f_non_transitive"] < 100.0
        assert noisy["f_transitive"] < 100.0

    def test_systematic_noise_hurts_transitive_more(self, small_config):
        result = run_worker_noise_ablation(
            small_config,
            threshold=0.3,
            error_rates=(0.3,),
            systematic_fraction=0.7,
        )
        assert result.rows[0]["delta_f"] < 2.0  # transitive not better


class TestHeuristicGapStudy:
    def test_heuristic_is_usually_optimal(self):
        result = run_heuristic_gap_study(n_instances=15, seed=3)
        rows = {row["statistic"]: row["value"] for row in result.rows}
        assert rows["instances"] == 15
        assert rows["heuristic_exactly_optimal"] >= 10
        assert rows["mean_gap_pairs"] < 0.2
        assert rows["max_gap_pairs"] >= 0.0


class TestPlotting:
    def test_ascii_plot_renders_all_series(self):
        chart = ascii_plot(
            {"a": [(1, 1), (2, 4)], "b": [(1, 2), (2, 8)]},
            width=20,
            height=8,
        )
        assert "o a" in chart and "x b" in chart
        assert chart.count("\n") >= 8

    def test_log_axes_drop_nonpositive_points(self):
        chart = ascii_plot({"a": [(0, 1), (10, 100)]}, log_x=True, log_y=True)
        assert "(log x, log y)" in chart

    def test_empty_plot_raises(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": []})
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0, 1)]}, log_x=True)

    def test_histogram_helper(self):
        chart = plot_histogram([1, 2, 10, 100], [50, 20, 3, 1], title="t")
        assert chart.startswith("t")
        assert "100" in chart

    def test_series_helper_uses_indices(self):
        chart = plot_series({"sizes": [900, 50, 10, 1]}, log_y=True)
        assert "1" in chart and "900" in chart

    def test_single_point(self):
        chart = ascii_plot({"a": [(5, 5)]})
        assert "o" in chart


class TestCLI:
    def test_runs_one_experiment(self, capsys, small_config):
        code = cli_main(
            [
                "figure10",
                "--dataset",
                "paper",
                "--scale",
                str(SCALE),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "figure10" in out
        assert "cluster_size" in out

    def test_plot_flag_adds_chart(self, capsys, small_config):
        cli_main(["figure10", "--dataset", "paper", "--scale", str(SCALE), "--plot"])
        out = capsys.readouterr().out
        assert "(log x, log y)" in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli_main(["figure99"])

    def test_all_excludes_ablations(self):
        assert "ablation-batch-size" not in paper_experiment_ids()
        assert len(paper_experiment_ids()) == 8
