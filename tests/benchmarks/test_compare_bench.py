"""The perf-trajectory gate: compare_bench must flag real timing regressions,
tolerate noise inside the threshold, and survive metric churn (new/removed
entries) across PRs."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_MODULE_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _MODULE_PATH)
compare_bench = importlib.util.module_from_spec(_spec)
sys.modules["compare_bench"] = compare_bench
_spec.loader.exec_module(compare_bench)


def _artifact(results: dict) -> dict:
    return {"suite": "bench_core_micro", "results": results}


def _write(tmp_path: Path, name: str, results: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(_artifact(results)))
    return path


BASELINE = {
    "union_find_unions": {"mean_s": 0.010, "rounds": 100},
    "selection_scan": {"mean_s": 0.020, "rounds": 50},
    "sweep": {"total_s": 2.0, "n_answers": 1000},
    "speedup": {"speedup": 100.0},
}


class TestComputeDeltas:
    def test_within_threshold_is_ok(self):
        fresh = {
            "union_find_unions": {"mean_s": 0.011, "rounds": 100},
            "selection_scan": {"mean_s": 0.018, "rounds": 50},
            "sweep": {"total_s": 2.2, "n_answers": 1000},
            "speedup": {"speedup": 90.0},
        }
        deltas, scale = compare_bench.compute_deltas(BASELINE, fresh)
        assert scale == 1.0
        assert compare_bench.gate_failures(deltas, 0.25) == []
        by_metric = {(d.metric, d.field): d for d in deltas}
        # non-timing fields (rounds, speedup, n_answers) are never tracked
        assert ("speedup", "speedup") not in by_metric
        assert by_metric[("sweep", "total_s")].status(0.25) == "ok"

    def test_regression_detected(self):
        fresh = {
            "union_find_unions": {"mean_s": 0.010},
            "selection_scan": {"mean_s": 0.030},  # +50%
            "sweep": {"total_s": 2.0},
        }
        deltas, _ = compare_bench.compute_deltas(BASELINE, fresh)
        failed = compare_bench.gate_failures(deltas, 0.25)
        assert [(d.metric, d.field) for d in failed] == [("selection_scan", "mean_s")]
        assert failed[0].status(0.25) == "regressed"

    def test_improvement_reported_not_failed(self):
        fresh = {
            "union_find_unions": {"mean_s": 0.010},
            "selection_scan": {"mean_s": 0.001},
            "sweep": {"total_s": 2.0},
        }
        deltas, _ = compare_bench.compute_deltas(BASELINE, fresh)
        assert compare_bench.gate_failures(deltas, 0.25) == []
        by_metric = {(d.metric, d.field): d for d in deltas}
        assert by_metric[("selection_scan", "mean_s")].status(0.25) == "faster"

    def test_new_metrics_never_gate(self):
        fresh = {
            "union_find_unions": {"mean_s": 0.010},
            "selection_scan": {"mean_s": 0.020},
            "sweep": {"total_s": 2.0},
            "brand_new_bench": {"mean_s": 5.0},
        }
        deltas, _ = compare_bench.compute_deltas(BASELINE, fresh)
        assert compare_bench.gate_failures(deltas, 0.25) == []
        by_metric = {(d.metric, d.field): d for d in deltas}
        assert by_metric[("brand_new_bench", "mean_s")].status(0.25) == "new"

    def test_gone_metrics_fail_the_gate(self):
        """A tracked timing that vanishes must fail: silently losing a
        benchmark erodes the trajectory."""
        fresh = {
            "union_find_unions": {"mean_s": 0.010},
            "selection_scan": {"mean_s": 0.020},
            "sweep": {"total_s": 2.0},
        }
        baseline = dict(BASELINE)
        baseline["retired_bench"] = {"mean_s": 0.5}
        deltas, _ = compare_bench.compute_deltas(baseline, fresh)
        failed = compare_bench.gate_failures(deltas, 0.25)
        assert [(d.metric, d.field) for d in failed] == [("retired_bench", "mean_s")]
        assert failed[0].status(0.25) == "gone"

    def test_calibration_rescales_and_exempts(self):
        # fresh machine runs everything 2x slower, uniformly: calibration
        # must absorb the slowdown and pass the gate.
        fresh = {
            "union_find_unions": {"mean_s": 0.020},
            "selection_scan": {"mean_s": 0.040},
            "sweep": {"total_s": 4.0},
        }
        deltas, scale = compare_bench.compute_deltas(
            BASELINE, fresh, calibrate="union_find_unions"
        )
        assert scale == pytest.approx(2.0)
        assert compare_bench.gate_failures(deltas, 0.25) == []
        by_metric = {(d.metric, d.field): d for d in deltas}
        assert by_metric[("union_find_unions", "mean_s")].status(0.25) == "calibration"

    def test_calibration_still_catches_real_regressions(self):
        fresh = {
            "union_find_unions": {"mean_s": 0.020},  # machine 2x slower
            "selection_scan": {"mean_s": 0.120},  # 6x slower: 3x beyond machine
            "sweep": {"total_s": 4.0},
        }
        deltas, _ = compare_bench.compute_deltas(
            BASELINE, fresh, calibrate="union_find_unions"
        )
        failed = compare_bench.gate_failures(deltas, 0.25)
        assert [(d.metric, d.field) for d in failed] == [("selection_scan", "mean_s")]

    def test_median_calibration_absorbs_machine_speed(self):
        """A uniform 2x machine slowdown passes; no metric is exempted."""
        fresh = {
            "union_find_unions": {"mean_s": 0.020},
            "selection_scan": {"mean_s": 0.040},
            "sweep": {"total_s": 4.0},
        }
        deltas, scale = compare_bench.compute_deltas(BASELINE, fresh, calibrate="median")
        assert scale == pytest.approx(2.0)
        assert compare_bench.gate_failures(deltas, 0.25) == []
        assert all(d.status(0.25) != "calibration" for d in deltas)

    def test_median_calibration_cannot_be_shifted_by_one_regression(self):
        """One genuinely regressed metric does not drag the median proxy, so
        it is still flagged on an otherwise-uniformly-slower machine."""
        fresh = {
            "union_find_unions": {"mean_s": 0.020},  # 2x (machine)
            "selection_scan": {"mean_s": 0.200},  # 10x: real regression
            "sweep": {"total_s": 4.0},  # 2x (machine)
        }
        deltas, scale = compare_bench.compute_deltas(BASELINE, fresh, calibrate="median")
        assert scale == pytest.approx(2.0)
        failed = compare_bench.gate_failures(deltas, 0.25)
        assert [(d.metric, d.field) for d in failed] == [("selection_scan", "mean_s")]

    def test_unknown_calibration_metric_rejected(self):
        with pytest.raises(ValueError):
            compare_bench.compute_deltas(BASELINE, BASELINE, calibrate="nope")
        with pytest.raises(ValueError):
            compare_bench.compute_deltas({}, {}, calibrate="median")

    def test_optional_dependency_entries_tolerate_absence(self):
        """An entry carrying ``requires`` (an optional dep like numpy) may
        vanish from the fresh artifact without failing the gate: the
        dependency simply was not installed on that runner."""
        baseline = dict(BASELINE)
        baseline["vectorized_scale"] = {
            "event_loop_s": 0.01,
            "requires": "numpy",
        }
        fresh = {key: dict(value) for key, value in BASELINE.items()}
        deltas, _ = compare_bench.compute_deltas(baseline, fresh)
        assert compare_bench.gate_failures(deltas, 0.25) == []
        by_metric = {(d.metric, d.field): d for d in deltas}
        assert by_metric[("vectorized_scale", "event_loop_s")].status(0.25) == (
            "optional"
        )

    def test_optional_entries_still_gate_when_present_on_both_sides(self):
        """``requires`` only forgives absence — a present-but-regressed
        optional timing fails like any other."""
        baseline = dict(BASELINE)
        baseline["vectorized_scale"] = {"event_loop_s": 0.01, "requires": "numpy"}
        fresh = {key: dict(value) for key, value in BASELINE.items()}
        fresh["vectorized_scale"] = {"event_loop_s": 0.10, "requires": "numpy"}
        deltas, _ = compare_bench.compute_deltas(baseline, fresh)
        failed = compare_bench.gate_failures(deltas, 0.25)
        assert [(d.metric, d.field) for d in failed] == [
            ("vectorized_scale", "event_loop_s")
        ]

    def test_cpu_count_mismatch_skips_the_gate(self):
        """A baseline recorded on a 1-CPU container must not gate parallel
        timings on a many-core runner (or vice versa) — the ratio measures
        hardware, not code."""
        baseline = dict(BASELINE)
        baseline["parallel_scale"] = {"sweep_frontier_s": 1.0, "n_cpus": 1}
        fresh = {key: dict(value) for key, value in BASELINE.items()}
        fresh["parallel_scale"] = {"sweep_frontier_s": 3.0, "n_cpus": 16}
        deltas, _ = compare_bench.compute_deltas(baseline, fresh)
        assert compare_bench.gate_failures(deltas, 0.25) == []
        by_metric = {(d.metric, d.field): d for d in deltas}
        assert by_metric[("parallel_scale", "sweep_frontier_s")].status(0.25) == (
            "hw-mismatch"
        )

    def test_matching_cpu_counts_still_gate(self):
        baseline = dict(BASELINE)
        baseline["parallel_scale"] = {"sweep_frontier_s": 1.0, "n_cpus": 4}
        fresh = {key: dict(value) for key, value in BASELINE.items()}
        fresh["parallel_scale"] = {"sweep_frontier_s": 3.0, "n_cpus": 4}
        deltas, _ = compare_bench.compute_deltas(baseline, fresh)
        failed = compare_bench.gate_failures(deltas, 0.25)
        assert [(d.metric, d.field) for d in failed] == [
            ("parallel_scale", "sweep_frontier_s")
        ]

    def test_hw_mismatched_entries_do_not_skew_median_calibration(self):
        """The median machine-speed proxy must come from comparable
        entries only: a 3x parallel 'slowdown' caused by fewer cores must
        not drag the calibration scale."""
        baseline = dict(BASELINE)
        baseline["parallel_scale"] = {"sweep_frontier_s": 1.0, "n_cpus": 16}
        fresh = {key: dict(value) for key, value in BASELINE.items()}
        fresh["parallel_scale"] = {"sweep_frontier_s": 5.0, "n_cpus": 1}
        deltas, scale = compare_bench.compute_deltas(
            baseline, fresh, calibrate="median"
        )
        assert scale == pytest.approx(1.0)
        assert compare_bench.gate_failures(deltas, 0.25) == []

    def test_single_sample_timings_get_slack(self):
        """One-shot totals carry more variance than multi-round means: with
        the default 2x slack, +40% on a total_s passes while +40% on a
        mean_s fails."""
        fresh = {
            "union_find_unions": {"mean_s": 0.010},
            "selection_scan": {"mean_s": 0.028},  # +40% on a mean: fails
            "sweep": {"total_s": 2.8},  # +40% on a single sample: ok at 2x slack
        }
        deltas, _ = compare_bench.compute_deltas(BASELINE, fresh)
        failed = compare_bench.gate_failures(deltas, 0.25)
        assert [(d.metric, d.field) for d in failed] == [("selection_scan", "mean_s")]
        by_metric = {(d.metric, d.field): d for d in deltas}
        assert by_metric[("sweep", "total_s")].status(0.25, 2.0) == "ok"
        # beyond the widened bar it still fails
        fresh["sweep"] = {"total_s": 3.2}  # +60%
        deltas, _ = compare_bench.compute_deltas(BASELINE, fresh)
        failed = compare_bench.gate_failures(deltas, 0.25)
        assert ("sweep", "total_s") in [(d.metric, d.field) for d in failed]


class TestRenderTable:
    def test_table_lists_every_tracked_timing(self):
        deltas, scale = compare_bench.compute_deltas(BASELINE, BASELINE)
        table = compare_bench.render_table(deltas, 0.25, scale)
        assert "| metric | field | baseline | fresh |" in table
        for metric in ("union_find_unions", "selection_scan", "sweep"):
            assert f"`{metric}`" in table
        assert "✅ ok" in table
        assert "25%" in table

    def test_units_scale_readably(self):
        assert compare_bench._fmt_seconds(2.5e-6) == "2.5µs"
        assert compare_bench._fmt_seconds(0.0025) == "2.50ms"
        assert compare_bench._fmt_seconds(2.5) == "2.500s"
        assert compare_bench._fmt_seconds(None) == "—"


class TestMainCLI:
    def test_exit_zero_and_summary_written(self, tmp_path, capsys):
        baseline = _write(tmp_path, "baseline.json", BASELINE)
        fresh = _write(tmp_path, "fresh.json", BASELINE)
        summary = tmp_path / "summary.md"
        code = compare_bench.main(
            [
                "--baseline", str(baseline),
                "--fresh", str(fresh),
                "--summary", str(summary),
            ]
        )
        assert code == 0
        assert "perf trajectory OK" in capsys.readouterr().out
        assert "Perf trajectory" in summary.read_text()

    def test_exit_one_on_regression(self, tmp_path, capsys):
        baseline = _write(tmp_path, "baseline.json", BASELINE)
        fresh_results = {
            key: dict(value) for key, value in BASELINE.items()
        }
        fresh_results["sweep"] = {"total_s": 3.5, "n_answers": 1000}  # +75%
        fresh = _write(tmp_path, "fresh.json", fresh_results)
        code = compare_bench.main(["--baseline", str(baseline), "--fresh", str(fresh)])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION: sweep.total_s" in captured.err

    def test_exit_one_on_gone_metric(self, tmp_path, capsys):
        baseline_results = dict(BASELINE)
        baseline_results["retired_bench"] = {"mean_s": 0.5}
        baseline = _write(tmp_path, "baseline.json", baseline_results)
        fresh = _write(tmp_path, "fresh.json", BASELINE)
        code = compare_bench.main(["--baseline", str(baseline), "--fresh", str(fresh)])
        assert code == 1
        assert "MISSING: retired_bench.mean_s" in capsys.readouterr().err

    def test_rejects_non_artifact(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            compare_bench.load_results(bogus)
