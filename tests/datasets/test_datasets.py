"""Tests for the dataset substrate: schema, distributions, generators, I/O."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pairs import Label, Pair
from repro.datasets import (
    ClusterSizeSpec,
    Corruptor,
    Dataset,
    Record,
    generate_paper_dataset,
    generate_product_dataset,
    load_dataset,
    paper_spec,
    product_spec,
    save_dataset,
)


class TestClusterSizeSpec:
    def test_counts_and_records(self):
        spec = ClusterSizeSpec.from_mapping({3: 2, 1: 4})
        assert spec.n_records == 10
        assert spec.n_clusters == 6
        assert spec.max_size == 3

    def test_matching_pairs(self):
        spec = ClusterSizeSpec.from_mapping({3: 1, 2: 2})
        assert spec.n_matching_pairs() == 3 + 2

    def test_sizes_iterates_largest_first(self):
        spec = ClusterSizeSpec.from_mapping({2: 1, 5: 1, 1: 2})
        assert list(spec.sizes()) == [5, 2, 1, 1]

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ClusterSizeSpec.from_mapping({0: 3})

    def test_singleton_adjustment(self):
        spec = ClusterSizeSpec.from_mapping({3: 2, 1: 1})
        adjusted = spec.with_singletons_adjusted(10)
        assert adjusted.n_records == 10
        assert adjusted.as_mapping()[1] == 4

    def test_singleton_adjustment_rejects_overflow(self):
        spec = ClusterSizeSpec.from_mapping({5: 3})
        with pytest.raises(ValueError):
            spec.with_singletons_adjusted(10)

    def test_paper_spec_matches_cora(self):
        spec = paper_spec()
        assert spec.n_records == 997
        assert spec.max_size == 102

    def test_product_spec_matches_abt_buy(self):
        spec = product_spec()
        assert spec.n_records == 1081 + 1092
        assert spec.max_size == 6

    @given(st.floats(0.1, 1.0))
    def test_scaled_specs_are_valid(self, scale):
        for spec in (paper_spec(scale), product_spec(scale)):
            assert spec.n_records > 0
            assert all(count >= 0 for _, count in spec.counts)

    def test_scaled_paper_keeps_big_cluster(self):
        assert paper_spec(0.2).max_size >= 30

    def test_scaled_product_keeps_small_clusters(self):
        assert product_spec(0.2).max_size <= 6


class TestCorruptor:
    def test_deterministic_given_seed(self):
        text = "adaptive learning for database systems"
        assert Corruptor(seed=5).corrupt_text(text) == Corruptor(seed=5).corrupt_text(text)

    def test_different_seeds_differ(self):
        text = "adaptive learning for database systems in modern architectures"
        outputs = {Corruptor(seed=s, word_ops_rate=0.5).corrupt_text(text) for s in range(8)}
        assert len(outputs) > 1

    def test_empty_text_unchanged(self):
        assert Corruptor(seed=1).corrupt_text("") == ""

    def test_skip_fields(self):
        corruptor = Corruptor(seed=2, word_ops_rate=1.0, drop_rate=1.0, swap_rate=1.0)
        fields = corruptor.corrupt_fields({"title": "alpha beta gamma", "date": "1999"}, skip=("date",))
        assert fields["date"] == "1999"

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            Corruptor(word_ops_rate=1.5)

    def test_corruption_preserves_some_tokens(self):
        """Light corruption should keep most tokens recognisable."""
        corruptor = Corruptor(seed=3, word_ops_rate=0.1, drop_rate=0.1, swap_rate=0.1)
        original = "hierarchical bayesian inference for structured prediction"
        corrupted = corruptor.corrupt_text(original)
        shared = set(original.split()) & set(corrupted.split())
        assert len(shared) >= 3


class TestRecordAndDataset:
    def test_record_text_selected_fields(self):
        record = Record("r1", {"title": "abc", "venue": "xyz"})
        assert record.text(["title"]) == "abc"
        assert record["venue"] == "xyz"

    def test_dataset_rejects_duplicate_ids(self):
        records = [Record("r1", {}), Record("r1", {})]
        with pytest.raises(ValueError):
            Dataset("d", records, {"r1": 0})

    def test_dataset_requires_ground_truth(self):
        with pytest.raises(ValueError):
            Dataset("d", [Record("r1", {})], {})

    def test_clusters_and_histogram(self):
        records = [Record(f"r{i}", {}) for i in range(4)]
        dataset = Dataset("d", records, {"r0": "e0", "r1": "e0", "r2": "e1", "r3": "e2"})
        assert dataset.cluster_size_histogram() == {2: 1, 1: 2}

    def test_matching_pairs_single_table(self):
        records = [Record(f"r{i}", {}) for i in range(3)]
        dataset = Dataset("d", records, {"r0": "e0", "r1": "e0", "r2": "e0"})
        assert len(dataset.matching_pairs()) == 3

    def test_matching_pairs_bipartite_excludes_same_source(self):
        records = [
            Record("a1", {}, source="abt"),
            Record("a2", {}, source="abt"),
            Record("b1", {}, source="buy"),
        ]
        dataset = Dataset("d", records, {"a1": "e", "a2": "e", "b1": "e"})
        pairs = dataset.matching_pairs()
        assert Pair("a1", "b1") in pairs
        assert Pair("a1", "a2") not in pairs

    def test_n_possible_pairs(self):
        records = [Record(f"r{i}", {}) for i in range(10)]
        dataset = Dataset("d", records, {f"r{i}": i for i in range(10)})
        assert dataset.n_possible_pairs() == 45


class TestPaperGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_paper_dataset(spec=paper_spec(0.25), seed=3)

    def test_histogram_matches_spec_exactly(self, dataset):
        spec = paper_spec(0.25)
        assert dict(dataset.cluster_size_histogram()) == spec.as_mapping()

    def test_single_table(self, dataset):
        assert not dataset.is_bipartite

    def test_records_have_bibliographic_fields(self, dataset):
        fields = dataset.records[0].fields
        assert {"authors", "title", "venue", "date", "pages"} <= set(fields)

    def test_deterministic(self):
        a = generate_paper_dataset(spec=paper_spec(0.15), seed=9)
        b = generate_paper_dataset(spec=paper_spec(0.15), seed=9)
        assert [r.fields for r in a.records] == [r.fields for r in b.records]

    def test_different_seeds_differ(self):
        a = generate_paper_dataset(spec=paper_spec(0.15), seed=1)
        b = generate_paper_dataset(spec=paper_spec(0.15), seed=2)
        assert [r.fields for r in a.records] != [r.fields for r in b.records]

    def test_duplicates_resemble_their_canonical(self, dataset):
        """Records of the same entity share most title tokens."""
        from repro.matcher.similarity import string_jaccard

        clusters = [c for c in dataset.clusters() if len(c) >= 3]
        cluster = sorted(clusters[0])
        a, b = dataset.record(cluster[0]), dataset.record(cluster[1])
        assert string_jaccard(a.text(), b.text()) > 0.2

    def test_full_scale_is_997_records(self):
        assert len(generate_paper_dataset()) == 997


class TestProductGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_product_dataset(spec=product_spec(0.2), seed=3)

    def test_histogram_matches_spec_exactly(self, dataset):
        spec = product_spec(0.2)
        assert dict(dataset.cluster_size_histogram()) == spec.as_mapping()

    def test_bipartite(self, dataset):
        assert dataset.is_bipartite
        assert dataset.sources() == ["abt", "buy"]

    def test_sources_balanced(self, dataset):
        from collections import Counter

        counts = Counter(r.source for r in dataset.records)
        assert abs(counts["abt"] - counts["buy"]) <= len(dataset) * 0.1

    def test_records_have_product_fields(self, dataset):
        assert {"name", "price"} <= set(dataset.records[0].fields)

    def test_cluster_records_split_across_sources(self, dataset):
        for cluster in dataset.clusters():
            if len(cluster) >= 2:
                sources = {dataset.record(rid).source for rid in cluster}
                assert len(sources) == 2
                break

    def test_full_scale_is_2173_records(self):
        assert len(generate_product_dataset()) == 1081 + 1092


class TestIO:
    def test_round_trip(self, tmp_path):
        original = generate_product_dataset(spec=product_spec(0.1), seed=4)
        save_dataset(original, tmp_path)
        loaded = load_dataset("product", tmp_path)
        assert loaded.ids() == original.ids()
        assert loaded.entity_of == {k: str(v) for k, v in original.entity_of.items()}
        assert loaded.record(loaded.ids()[0]).fields == dict(
            original.record(original.ids()[0]).fields
        )
        assert loaded.sources() == original.sources()

    def test_field_subset(self, tmp_path):
        original = generate_paper_dataset(spec=paper_spec(0.1), seed=4)
        save_dataset(original, tmp_path)
        loaded = load_dataset("paper", tmp_path, field_names=["title"])
        assert set(loaded.records[0].fields) == {"title"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset("nope", tmp_path)
