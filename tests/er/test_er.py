"""Tests for the entity-resolution toolkit (clustering + metrics)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.er.clustering import (
    cluster_matches,
    entity_assignment,
    implied_matches,
    split_oversized_clusters,
)
from repro.er.ground_truth import (
    match_fraction,
    recall_of_candidates,
    true_matches_within,
)
from repro.er.metrics import (
    PairwiseQuality,
    cluster_quality,
    evaluate_labels,
    evaluate_matches,
)

from ..strategies import worlds


class TestClustering:
    def test_components(self):
        matches = [Pair("a", "b"), Pair("b", "c"), Pair("x", "y")]
        clusters = {frozenset(c) for c in cluster_matches(matches)}
        assert clusters == {frozenset("abc"), frozenset("xy")}

    def test_unmatched_objects_become_singletons(self):
        clusters = cluster_matches([Pair("a", "b")], all_objects=["a", "b", "z"])
        assert {frozenset(c) for c in clusters} == {frozenset("ab"), frozenset("z")}

    def test_entity_assignment_consistent(self):
        matches = [Pair("a", "b"), Pair("c", "d")]
        assignment = entity_assignment(matches)
        assert assignment["a"] == assignment["b"]
        assert assignment["a"] != assignment["c"]

    def test_implied_matches_closure(self):
        implied = implied_matches([Pair("a", "b"), Pair("b", "c")])
        assert implied == {Pair("a", "b"), Pair("b", "c"), Pair("a", "c")}

    def test_split_oversized(self):
        clusters = [set("abcd"), set("xy")]
        split = split_oversized_clusters(clusters, max_size=2)
        assert {frozenset(c) for c in split} == {
            frozenset("a"), frozenset("b"), frozenset("c"), frozenset("d"), frozenset("xy"),
        }

    def test_split_rejects_bad_size(self):
        with pytest.raises(ValueError):
            split_oversized_clusters([], max_size=0)

    @given(worlds())
    @settings(max_examples=40)
    def test_matches_networkx_components(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        matches = [c.pair for c in candidates if truth.label(c.pair) is Label.MATCHING]
        graph = nx.Graph()
        for pair in matches:
            graph.add_edge(pair.left, pair.right)
        expected = {frozenset(c) for c in nx.connected_components(graph)}
        actual = {frozenset(c) for c in cluster_matches(matches)}
        assert actual == expected


class TestMetrics:
    def test_perfect_labels(self):
        truth = GroundTruthOracle({"a": 1, "b": 1, "c": 2})
        labels = {
            Pair("a", "b"): Label.MATCHING,
            Pair("a", "c"): Label.NON_MATCHING,
        }
        quality = evaluate_labels(labels, truth)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f_measure == 1.0

    def test_counts(self):
        truth = GroundTruthOracle({"a": 1, "b": 1, "c": 2, "d": 3})
        labels = {
            Pair("a", "b"): Label.NON_MATCHING,  # fn
            Pair("a", "c"): Label.MATCHING,      # fp
            Pair("c", "d"): Label.NON_MATCHING,  # tn
        }
        quality = evaluate_labels(labels, truth)
        assert (quality.tp, quality.fp, quality.fn) == (0, 1, 1)
        assert quality.precision == 0.0
        assert quality.recall == 0.0
        assert quality.f_measure == 0.0

    def test_paper_formulas(self):
        quality = PairwiseQuality(tp=80, fp=20, fn=10)
        assert quality.precision == pytest.approx(0.8)
        assert quality.recall == pytest.approx(80 / 90)
        expected_f = 2 * 0.8 * (80 / 90) / (0.8 + 80 / 90)
        assert quality.f_measure == pytest.approx(expected_f)

    def test_empty_edge_cases(self):
        quality = PairwiseQuality(tp=0, fp=0, fn=0)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f_measure == 1.0

    def test_as_row_percentages(self):
        row = PairwiseQuality(tp=1, fp=1, fn=0).as_row()
        assert row["precision"] == pytest.approx(50.0)

    def test_evaluate_matches_with_universe(self):
        predicted = {Pair("a", "b"), Pair("x", "y")}
        true = {Pair("a", "b"), Pair("c", "d")}
        quality = evaluate_matches(predicted, true, universe=[Pair("a", "b"), Pair("c", "d")])
        assert quality.tp == 1
        assert quality.fp == 0  # (x, y) outside the universe
        assert quality.fn == 1

    def test_cluster_quality_perfect(self):
        entity_of = {"a": 1, "b": 1, "c": 2}
        quality = cluster_quality([{"a", "b"}, {"c"}], entity_of)
        assert quality.f_measure == 1.0

    def test_cluster_quality_overmerged(self):
        entity_of = {"a": 1, "b": 1, "c": 2}
        quality = cluster_quality([{"a", "b", "c"}], entity_of)
        assert quality.tp == 1
        assert quality.fp == 2
        assert quality.recall == 1.0

    @given(worlds())
    @settings(max_examples=40)
    def test_truth_labels_always_score_one(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        labels = {c.pair: truth.label(c.pair) for c in candidates}
        quality = evaluate_labels(labels, truth)
        assert quality.f_measure == 1.0


class TestGroundTruthHelpers:
    def test_true_matches_within(self):
        entity_of = {"a": 1, "b": 1, "c": 2}
        pairs = [Pair("a", "b"), Pair("a", "c")]
        assert true_matches_within(pairs, entity_of) == {Pair("a", "b")}

    def test_match_fraction(self):
        entity_of = {"a": 1, "b": 1, "c": 2}
        assert match_fraction([Pair("a", "b"), Pair("a", "c")], entity_of) == 0.5
        assert match_fraction([], entity_of) == 0.0

    def test_recall_of_candidates(self):
        true = {Pair("a", "b"), Pair("c", "d")}
        assert recall_of_candidates([Pair("a", "b")], true) == 0.5
        assert recall_of_candidates([], set()) == 1.0
