"""Shared fixtures: the paper's running example (Figure 3) and helpers.

Figure 3 of the paper defines six objects o1..o6 where {o1, o2, o3} are one
entity, {o4, o5} another, and o6 is a singleton, plus eight candidate pairs
p1..p8 listed in decreasing likelihood:

    p1 = (o1, o2)  matching
    p2 = (o2, o3)  matching
    p3 = (o1, o6)  non-matching
    p4 = (o1, o3)  matching      (deducible from p1, p2)
    p5 = (o4, o5)  matching
    p6 = (o4, o6)  non-matching  (deducible from p5, p8)
    p7 = (o2, o4)  non-matching
    p8 = (o5, o6)  non-matching  (deducible from p5, p6)

Example 2 shows the optimal cost is six crowdsourced pairs; Example 5 shows
the parallel labeler publishes {p1, p2, p3, p5, p6} then {p7}.
"""

from __future__ import annotations

import pytest

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import CandidatePair, Label, LabeledPair, Pair

FIGURE3_ENTITIES = {
    "o1": "A",
    "o2": "A",
    "o3": "A",
    "o4": "B",
    "o5": "B",
    "o6": "C",
}

FIGURE3_PAIRS = {
    "p1": Pair("o1", "o2"),
    "p2": Pair("o2", "o3"),
    "p3": Pair("o1", "o6"),
    "p4": Pair("o1", "o3"),
    "p5": Pair("o4", "o5"),
    "p6": Pair("o4", "o6"),
    "p7": Pair("o2", "o4"),
    "p8": Pair("o5", "o6"),
}

FIGURE3_LIKELIHOODS = {
    "p1": 0.95,
    "p2": 0.90,
    "p3": 0.85,
    "p4": 0.80,
    "p5": 0.75,
    "p6": 0.70,
    "p7": 0.65,
    "p8": 0.60,
}


@pytest.fixture
def figure3_truth() -> GroundTruthOracle:
    """Ground-truth oracle for the Figure 3 objects."""
    return GroundTruthOracle(FIGURE3_ENTITIES)


@pytest.fixture
def figure3_candidates() -> list[CandidatePair]:
    """The eight candidate pairs p1..p8, already in decreasing likelihood."""
    return [
        CandidatePair(FIGURE3_PAIRS[name], FIGURE3_LIKELIHOODS[name])
        for name in ("p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8")
    ]


@pytest.fixture
def figure3_pairs() -> dict[str, Pair]:
    """Name -> Pair mapping for p1..p8."""
    return dict(FIGURE3_PAIRS)


@pytest.fixture
def example1_labeled() -> list[LabeledPair]:
    """The seven labeled pairs of paper Example 1 / Figure 2.

    Matching: (o1,o2), (o3,o4), (o4,o5); non-matching: (o1,o6), (o2,o3),
    (o3,o7), (o5,o6).
    """
    matching = [("o1", "o2"), ("o3", "o4"), ("o4", "o5")]
    non_matching = [("o1", "o6"), ("o2", "o3"), ("o3", "o7"), ("o5", "o6")]
    labeled = [LabeledPair(Pair(a, b), Label.MATCHING) for a, b in matching]
    labeled += [LabeledPair(Pair(a, b), Label.NON_MATCHING) for a, b in non_matching]
    return labeled
