"""Tests for the reference deduction procedures and their agreement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.cluster_graph import ClusterGraph
from repro.core.deduction import (
    deduce_by_path_enumeration,
    deduce_by_search,
    enumerate_simple_paths,
)
from repro.core.pairs import Label, LabeledPair, Pair

from ..strategies import consistent_labelings


def lp(a, b, label):
    return LabeledPair(Pair(a, b), label)


class TestDeduceBySearch:
    def test_positive_transitivity(self):
        labeled = [lp("a", "b", Label.MATCHING), lp("b", "c", Label.MATCHING)]
        assert deduce_by_search(Pair("a", "c"), labeled) is Label.MATCHING

    def test_negative_transitivity(self):
        labeled = [lp("a", "b", Label.MATCHING), lp("b", "c", Label.NON_MATCHING)]
        assert deduce_by_search(Pair("a", "c"), labeled) is Label.NON_MATCHING

    def test_two_non_matching_blocks(self):
        labeled = [lp("a", "b", Label.NON_MATCHING), lp("b", "c", Label.NON_MATCHING)]
        assert deduce_by_search(Pair("a", "c"), labeled) is None

    def test_unknown_objects(self):
        labeled = [lp("a", "b", Label.MATCHING)]
        assert deduce_by_search(Pair("x", "y"), labeled) is None

    def test_example1(self, example1_labeled):
        assert deduce_by_search(Pair("o3", "o5"), example1_labeled) is Label.MATCHING
        assert deduce_by_search(Pair("o5", "o7"), example1_labeled) is Label.NON_MATCHING
        assert deduce_by_search(Pair("o1", "o7"), example1_labeled) is None

    def test_prefers_matching_over_non_matching_path(self):
        """If both an all-matching and a one-non-matching path existed the
        set would be inconsistent, but the matching answer must win (it
        corresponds to the min-non-matching path count)."""
        labeled = [
            lp("a", "b", Label.MATCHING),
            lp("b", "c", Label.MATCHING),
            lp("a", "x", Label.NON_MATCHING),
            lp("x", "c", Label.MATCHING),
        ]
        assert deduce_by_search(Pair("a", "c"), labeled) is Label.MATCHING


class TestPathEnumeration:
    def test_matches_search_on_example1(self, example1_labeled):
        for query in (Pair("o3", "o5"), Pair("o5", "o7"), Pair("o1", "o7")):
            assert deduce_by_path_enumeration(query, example1_labeled) == deduce_by_search(
                query, example1_labeled
            )

    def test_enumerates_both_example1_paths(self, example1_labeled):
        """Example 1 notes two paths from o1 to o7."""
        paths = enumerate_simple_paths("o1", "o7", example1_labeled)
        assert len(paths) == 2

    def test_max_paths_guard(self):
        # A complete matching graph on 10 vertices has thousands of simple
        # paths between any two vertices.
        labeled = [
            lp(i, j, Label.MATCHING) for i in range(10) for j in range(i + 1, 10)
        ]
        with pytest.raises(RuntimeError):
            enumerate_simple_paths(0, 9, labeled, max_paths=10)

    def test_no_paths_between_components(self):
        labeled = [lp("a", "b", Label.MATCHING), lp("c", "d", Label.MATCHING)]
        assert enumerate_simple_paths("a", "c", labeled) == []


class TestThreeWayAgreement:
    """ClusterGraph, BFS search, and path enumeration are the same function
    on consistent labelings."""

    @given(consistent_labelings(max_objects=7, max_pairs=10))
    @settings(max_examples=40, deadline=None)
    def test_all_three_agree(self, labeled):
        graph = ClusterGraph(labeled)
        objects = sorted({o for item in labeled for o in item.pair})
        for i in range(len(objects)):
            for j in range(i + 1, len(objects)):
                query = Pair(objects[i], objects[j])
                by_graph = graph.deduce(query)
                by_search = deduce_by_search(query, labeled)
                by_paths = deduce_by_path_enumeration(query, labeled)
                assert by_graph == by_search == by_paths, query
