"""Tests for the expected-cost machinery (Section 4.2), anchored on paper
Example 4's exact numbers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expected_cost import (
    MAX_BRUTE_FORCE_PAIRS,
    MAX_ENUMERATION_PAIRS,
    adaptive_expected_cost,
    adaptive_optimal_choice,
    brute_force_adaptive_optimal,
    brute_force_expected_optimal,
    consistent_assignments_count,
    crowdsourced_count,
    crowdsourcing_probabilities,
    enumerate_consistent_assignments,
    expected_cost,
    heuristic_gap,
    posterior_assignments,
    posterior_match_probability,
    sample_assignment,
)
from repro.core.pairs import Pair
from repro.core.oracle import GroundTruthOracle
from repro.core.ordering import expected_order
from repro.core.pairs import Label, candidate

from ..strategies import worlds


@pytest.fixture
def example4_candidates():
    """p1=(o1,o2) P=0.9, p2=(o2,o3) P=0.5, p3=(o1,o3) P=0.1."""
    return [
        candidate("o1", "o2", 0.9),
        candidate("o2", "o3", 0.5),
        candidate("o1", "o3", 0.1),
    ]


class TestExample4:
    def test_five_consistent_assignments(self, example4_candidates):
        """The paper enumerates exactly five consistent possibilities."""
        assert consistent_assignments_count(example4_candidates) == 5

    def test_triangle_excludes_two_matching_one_not(self, example4_candidates):
        """{M, M, N} patterns on a triangle are inconsistent."""
        assignments = enumerate_consistent_assignments(example4_candidates)
        for assignment in assignments:
            n_matching = sum(1 for l in assignment.labels if l is Label.MATCHING)
            assert n_matching != 2

    def test_weights_sum_to_one(self, example4_candidates):
        assignments = enumerate_consistent_assignments(example4_candidates)
        assert sum(a.weight for a in assignments) == pytest.approx(1.0)

    def test_all_six_orders_match_paper(self, example4_candidates):
        """E[C] = 2.09, 2.17, 2.83, 2.09, 2.17, 2.83 for w1..w6."""
        p1, p2, p3 = example4_candidates
        expected_values = {
            (0, 1, 2): 2.09,
            (0, 2, 1): 2.17,
            (1, 2, 0): 2.83,
            (1, 0, 2): 2.09,
            (2, 0, 1): 2.17,
            (2, 1, 0): 2.83,
        }
        cands = [p1, p2, p3]
        for perm, value in expected_values.items():
            order = [cands[i] for i in perm]
            assert expected_cost(order) == pytest.approx(value, abs=0.005), perm

    def test_p3_crowdsourcing_probability(self, example4_candidates):
        """P(p3 crowdsourced) = 0.09 under order w1 (paper's computation)."""
        probabilities = crowdsourcing_probabilities(example4_candidates)
        assert probabilities[0] == pytest.approx(1.0)
        assert probabilities[1] == pytest.approx(1.0)
        assert probabilities[2] == pytest.approx(0.0917, abs=0.001)

    def test_brute_force_finds_209(self, example4_candidates):
        _, best = brute_force_expected_optimal(example4_candidates)
        assert best == pytest.approx(2.09, abs=0.005)

    def test_heuristic_is_optimal_here(self, example4_candidates):
        """The likelihood-descending order w1 is expected-optimal on
        Example 4."""
        heuristic, optimum = heuristic_gap(example4_candidates)
        assert heuristic == pytest.approx(optimum, abs=1e-9)


class TestGuards:
    def test_enumeration_limit(self):
        too_many = [candidate(f"a{i}", f"b{i}", 0.5) for i in range(MAX_ENUMERATION_PAIRS + 1)]
        with pytest.raises(ValueError):
            enumerate_consistent_assignments(too_many)

    def test_brute_force_limit(self):
        too_many = [candidate(f"a{i}", f"b{i}", 0.5) for i in range(MAX_BRUTE_FORCE_PAIRS + 1)]
        with pytest.raises(ValueError):
            brute_force_expected_optimal(too_many)

    def test_impossible_world_raises(self):
        """Likelihoods forcing an inconsistent triangle have no consistent
        assignment with positive probability."""
        impossible = [
            candidate("a", "b", 1.0),
            candidate("b", "c", 1.0),
            candidate("a", "c", 0.0),
        ]
        with pytest.raises(ValueError):
            enumerate_consistent_assignments(impossible)

    def test_sample_assignment_rejects_bad_u(self, example4_candidates):
        with pytest.raises(ValueError):
            sample_assignment(example4_candidates, 1.5)


class TestExpectedCostProperties:
    @given(worlds(max_objects=6, max_pairs=6))
    @settings(max_examples=30, deadline=None)
    def test_expectation_equals_sum_of_probabilities(self, world):
        candidates, _ = world
        candidates = [
            candidate(c.left, c.right, min(max(c.likelihood, 0.05), 0.95))
            for c in candidates
        ]
        # dedupe pairs (worlds may repeat); keep small
        seen = set()
        unique = [c for c in candidates if not (c.pair in seen or seen.add(c.pair))][:6]
        if not unique:
            return
        total = expected_cost(unique)
        probabilities = crowdsourcing_probabilities(unique)
        assert total == pytest.approx(sum(probabilities))

    @given(worlds(max_objects=6, max_pairs=6), st.floats(0.0, 0.999))
    @settings(max_examples=30, deadline=None)
    def test_sampled_assignment_cost_bounds_expectation(self, world, u):
        """Any realised cost is between min and max over assignments, and the
        expectation lies in the same envelope."""
        candidates, _ = world
        seen = set()
        unique = [
            candidate(c.left, c.right, min(max(c.likelihood, 0.05), 0.95))
            for c in candidates
            if not (c.pair in seen or seen.add(c.pair))
        ][:6]
        if not unique:
            return
        assignments = enumerate_consistent_assignments(unique)
        pairs = [c.pair for c in unique]
        costs = [
            crowdsourced_count(unique, a.as_mapping(pairs)) for a in assignments
        ]
        sampled = crowdsourced_count(unique, sample_assignment(unique, u))
        assert min(costs) <= sampled <= max(costs)
        assert min(costs) - 1e-9 <= expected_cost(unique) <= max(costs) + 1e-9

    @given(worlds(max_objects=5, max_pairs=5))
    @settings(max_examples=20, deadline=None)
    def test_first_pair_always_crowdsourced(self, world):
        candidates, _ = world
        seen = set()
        unique = [
            candidate(c.left, c.right, min(max(c.likelihood, 0.05), 0.95))
            for c in candidates
            if not (c.pair in seen or seen.add(c.pair))
        ][:5]
        if not unique:
            return
        probabilities = crowdsourcing_probabilities(unique)
        assert probabilities[0] == pytest.approx(1.0)


class TestHeuristicQuality:
    """The heuristic is not always optimal (the problem is NP-hard), but on
    small informed instances it should be close to brute force."""

    @given(worlds(max_objects=5, max_pairs=5))
    @settings(max_examples=15, deadline=None)
    def test_heuristic_within_one_pair_of_optimal(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        # Make likelihoods informative: matching -> 0.9, non-matching -> 0.1.
        seen = set()
        informed = [
            candidate(
                c.left,
                c.right,
                0.9 if truth.label(c.pair) is Label.MATCHING else 0.1,
            )
            for c in candidates
            if not (c.pair in seen or seen.add(c.pair))
        ][:5]
        if not informed:
            return
        heuristic, optimum = heuristic_gap(informed)
        assert heuristic <= optimum + 1.0


class TestPosteriors:
    """Conditioning on evidence: the posterior machinery behind the adaptive
    dispatch, anchored on the Example 4 triangle."""

    def test_no_evidence_is_the_prior(self, example4_candidates):
        posterior = posterior_assignments(example4_candidates, {})
        prior = enumerate_consistent_assignments(example4_candidates)
        assert len(posterior) == len(prior)
        for after, before in zip(posterior, prior):
            assert after.labels == before.labels
            assert after.weight == pytest.approx(before.weight)

    def test_evidence_prunes_and_renormalises(self, example4_candidates):
        p1 = example4_candidates[0].pair
        posterior = posterior_assignments(
            example4_candidates, {p1: Label.MATCHING}
        )
        assert sum(a.weight for a in posterior) == pytest.approx(1.0)
        index = {c.pair: i for i, c in enumerate(example4_candidates)}
        for assignment in posterior:
            assert assignment.labels[index[p1]] is Label.MATCHING

    def test_transitive_evidence_forces_the_third_edge(self, example4_candidates):
        """Given p1 and p2 both matching, p3 is matching with certainty."""
        p1, p2, p3 = (c.pair for c in example4_candidates)
        probability = posterior_match_probability(
            example4_candidates,
            {p1: Label.MATCHING, p2: Label.MATCHING},
            p3,
        )
        assert probability == pytest.approx(1.0)

    def test_posterior_differs_from_raw_likelihood(self, example4_candidates):
        """One matching edge of the triangle raises the odds on the rest."""
        p1, p2, _ = (c.pair for c in example4_candidates)
        conditioned = posterior_match_probability(
            example4_candidates, {p1: Label.MATCHING}, p2
        )
        assert conditioned != pytest.approx(example4_candidates[1].likelihood)

    def test_unknown_evidence_pair_rejected(self, example4_candidates):
        with pytest.raises(ValueError, match="not a candidate"):
            posterior_assignments(
                example4_candidates, {Pair("x", "y"): Label.MATCHING}
            )

    def test_zero_mass_evidence_rejected(self):
        """Evidence contradicting a certain pair has no posterior."""
        certain = [candidate("a", "b", 1.0), candidate("b", "c", 0.5)]
        with pytest.raises(ValueError, match="zero posterior"):
            posterior_assignments(certain, {certain[0].pair: Label.NON_MATCHING})


class TestAdaptivePolicies:
    def test_adaptive_lower_bounds_the_static_optimum(self, example4_candidates):
        adaptive = brute_force_adaptive_optimal(example4_candidates)
        _, static = brute_force_expected_optimal(example4_candidates)
        assert adaptive <= static + 1e-9

    def test_static_policy_evaluates_to_its_static_cost(self, example4_candidates):
        """adaptive_expected_cost over an answer-blind policy reproduces
        expected_cost of the same order exactly."""

        def static_policy(unresolved, evidence):
            order = {c.pair: i for i, c in enumerate(example4_candidates)}
            return min(unresolved, key=lambda c: order[c.pair])

        cost = adaptive_expected_cost(example4_candidates, static_policy)
        assert cost == pytest.approx(expected_cost(example4_candidates), abs=1e-9)

    def test_optimal_choice_resolves_to_none_when_evidence_closes_all(
        self, example4_candidates
    ):
        p1, p2, _ = (c.pair for c in example4_candidates)
        evidence = {p1: Label.MATCHING, p2: Label.MATCHING}
        assert adaptive_optimal_choice(example4_candidates, evidence) is None

    def test_optimal_choice_is_a_candidate(self, example4_candidates):
        chosen = adaptive_optimal_choice(example4_candidates)
        assert chosen in example4_candidates

    def test_adaptive_brute_force_rejects_oversized_instances(self):
        too_many = [
            candidate(f"a{i}", f"b{i}", 0.5)
            for i in range(2 * MAX_BRUTE_FORCE_PAIRS + 1)
        ]
        with pytest.raises(ValueError, match="infeasible"):
            brute_force_adaptive_optimal(too_many)
