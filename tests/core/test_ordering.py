"""Tests for labeling orders (paper Section 4), including Theorem 1's
optimality and the swap lemmas as property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import GroundTruthOracle, MappingOracle
from repro.core.ordering import (
    ExpectedOrderSorter,
    IdentityOrderSorter,
    OptimalOrderSorter,
    RandomOrderSorter,
    WorstOrderSorter,
    expected_order,
    make_sorter,
    optimal_order,
    random_order,
    worst_order,
)
from repro.core.pairs import CandidatePair, Label, Pair, candidate
from repro.core.sequential import crowdsourced_count

from ..strategies import worlds


class TestExpectedOrder:
    def test_sorts_by_decreasing_likelihood(self):
        cands = [candidate("a", "b", 0.2), candidate("c", "d", 0.9), candidate("e", "f", 0.5)]
        ordered = expected_order(cands)
        assert [c.likelihood for c in ordered] == [0.9, 0.5, 0.2]

    def test_stable_for_ties(self):
        cands = [candidate("a", "b", 0.5), candidate("c", "d", 0.5)]
        ordered = expected_order(cands)
        assert [c.pair for c in ordered] == [Pair("a", "b"), Pair("c", "d")]

    def test_figure3_order_is_p1_to_p8(self, figure3_candidates):
        """Paper Section 4.2: the heuristic order on Figure 3 is p1..p8."""
        ordered = ExpectedOrderSorter().sort(figure3_candidates)
        assert ordered == figure3_candidates

    def test_does_not_mutate_input(self):
        cands = [candidate("a", "b", 0.2), candidate("c", "d", 0.9)]
        snapshot = list(cands)
        expected_order(cands)
        assert cands == snapshot


class TestOptimalOrder:
    def test_matching_pairs_come_first(self, figure3_candidates, figure3_truth):
        ordered = optimal_order(figure3_candidates, figure3_truth)
        labels = [figure3_truth.label(c.pair) for c in ordered]
        first_non_matching = labels.index(Label.NON_MATCHING)
        assert all(l is Label.NON_MATCHING for l in labels[first_non_matching:])

    def test_preserves_input_order_within_groups(self, figure3_candidates, figure3_truth):
        ordered = optimal_order(figure3_candidates, figure3_truth)
        matching = [c for c in ordered if figure3_truth.label(c.pair) is Label.MATCHING]
        original = [c for c in figure3_candidates if figure3_truth.label(c.pair) is Label.MATCHING]
        assert matching == original


class TestWorstOrder:
    def test_non_matching_pairs_come_first(self, figure3_candidates, figure3_truth):
        ordered = worst_order(figure3_candidates, figure3_truth)
        labels = [figure3_truth.label(c.pair) for c in ordered]
        first_matching = labels.index(Label.MATCHING)
        assert all(l is Label.MATCHING for l in labels[first_matching:])


class TestRandomOrder:
    def test_same_seed_same_order(self):
        cands = [candidate(f"a{i}", f"b{i}", 0.5) for i in range(10)]
        assert random_order(cands, seed=7) == random_order(cands, seed=7)

    def test_different_seeds_usually_differ(self):
        cands = [candidate(f"a{i}", f"b{i}", 0.5) for i in range(10)]
        assert random_order(cands, seed=1) != random_order(cands, seed=2)

    def test_is_a_permutation(self):
        cands = [candidate(f"a{i}", f"b{i}", 0.5) for i in range(10)]
        assert sorted(random_order(cands, seed=3), key=lambda c: repr(c.pair)) == sorted(
            cands, key=lambda c: repr(c.pair)
        )


class TestMakeSorter:
    def test_known_names(self, figure3_truth):
        assert isinstance(make_sorter("expected"), ExpectedOrderSorter)
        assert isinstance(make_sorter("identity"), IdentityOrderSorter)
        assert isinstance(make_sorter("random"), RandomOrderSorter)
        assert isinstance(make_sorter("optimal", truth=figure3_truth), OptimalOrderSorter)
        assert isinstance(make_sorter("worst", truth=figure3_truth), WorstOrderSorter)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_sorter("alphabetical")

    def test_optimal_requires_truth(self):
        with pytest.raises(ValueError):
            make_sorter("optimal")


class TestSection31Example:
    """Section 3.1: order <(o1,o2),(o2,o3),(o1,o3)> needs 2 crowdsourced
    pairs; <(o2,o3),(o1,o3),(o1,o2)> needs 3."""

    @pytest.fixture
    def truth(self):
        # o1 = o2, o2 != o3, o1 != o3
        return GroundTruthOracle({"o1": "X", "o2": "X", "o3": "Y"})

    def test_good_order_needs_two(self, truth):
        order = [Pair("o1", "o2"), Pair("o2", "o3"), Pair("o1", "o3")]
        assert crowdsourced_count(order, truth) == 2

    def test_bad_order_needs_three(self, truth):
        order = [Pair("o2", "o3"), Pair("o1", "o3"), Pair("o1", "o2")]
        assert crowdsourced_count(order, truth) == 3


class TestSection41Example:
    """Section 4.1: p1=(o1,o2) matching, p2=(o2,o3), p3=(o1,o3) non-matching;
    the six orders cost 2, 2, 3, 2, 2, 3."""

    @pytest.fixture
    def truth(self):
        return GroundTruthOracle({"o1": "X", "o2": "X", "o3": "Y"})

    def test_all_six_orders(self, truth):
        p1, p2, p3 = Pair("o1", "o2"), Pair("o2", "o3"), Pair("o1", "o3")
        costs = [
            crowdsourced_count(order, truth)
            for order in (
                [p1, p2, p3],
                [p1, p3, p2],
                [p2, p3, p1],
                [p2, p1, p3],
                [p3, p1, p2],
                [p3, p2, p1],
            )
        ]
        assert costs == [2, 2, 3, 2, 2, 3]


class TestTheorem1:
    """The optimal order (matching first) never costs more than any other."""

    @given(worlds(max_objects=8, max_pairs=12), st.integers(0, 1000))
    @settings(max_examples=60)
    def test_optimal_beats_random(self, world, seed):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        cost_optimal = crowdsourced_count(optimal_order(candidates, truth), truth)
        cost_random = crowdsourced_count(random_order(candidates, seed=seed), truth)
        assert cost_optimal <= cost_random

    @given(worlds(max_objects=8, max_pairs=12))
    @settings(max_examples=60)
    def test_optimal_beats_worst(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        cost_optimal = crowdsourced_count(optimal_order(candidates, truth), truth)
        cost_worst = crowdsourced_count(worst_order(candidates, truth), truth)
        assert cost_optimal <= cost_worst

    def test_figure3_optimal_cost_is_six(self, figure3_candidates, figure3_truth):
        """Example 2: six is the optimal number of crowdsourced pairs."""
        ordered = optimal_order(figure3_candidates, figure3_truth)
        assert crowdsourced_count(ordered, figure3_truth) == 6


class TestSwapLemmas:
    """Lemmas 2 and 3 as executable properties over random worlds."""

    @given(worlds(max_objects=8, max_pairs=10), st.integers(0, 50))
    @settings(max_examples=60)
    def test_lemma2_swapping_matching_forward_never_hurts(self, world, position):
        """Swapping adjacent (non-matching, matching) -> (matching,
        non-matching) gives C(w') <= C(w)."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        order = list(candidates)
        if len(order) < 2:
            return
        i = position % (len(order) - 1)
        first, second = order[i], order[i + 1]
        if not (
            truth.label(first.pair) is Label.NON_MATCHING
            and truth.label(second.pair) is Label.MATCHING
        ):
            return
        swapped = list(order)
        swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
        assert crowdsourced_count(swapped, truth) <= crowdsourced_count(order, truth)

    @given(worlds(max_objects=8, max_pairs=10), st.integers(0, 50))
    @settings(max_examples=60)
    def test_lemma3_swapping_same_type_is_neutral(self, world, position):
        """Swapping two adjacent pairs of the same type keeps C unchanged."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        order = list(candidates)
        if len(order) < 2:
            return
        i = position % (len(order) - 1)
        if truth.label(order[i].pair) is not truth.label(order[i + 1].pair):
            return
        swapped = list(order)
        swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
        assert crowdsourced_count(swapped, truth) == crowdsourced_count(order, truth)
