"""Tests for labeling-consistency (realisability) checks."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.consistency import (
    closure,
    entity_partition,
    find_violations,
    is_consistent,
)
from repro.core.pairs import Label, LabeledPair, Pair

from ..strategies import consistent_labelings


def lp(a, b, label):
    return LabeledPair(Pair(a, b), label)


class TestIsConsistent:
    def test_empty_is_consistent(self):
        assert is_consistent([])

    def test_matching_triangle_is_consistent(self):
        labeled = [
            lp("a", "b", Label.MATCHING),
            lp("b", "c", Label.MATCHING),
            lp("a", "c", Label.MATCHING),
        ]
        assert is_consistent(labeled)

    def test_two_matching_one_non_matching_triangle_is_inconsistent(self):
        labeled = [
            lp("a", "b", Label.MATCHING),
            lp("b", "c", Label.MATCHING),
            lp("a", "c", Label.NON_MATCHING),
        ]
        assert not is_consistent(labeled)

    def test_one_matching_two_non_matching_triangle_is_consistent(self):
        labeled = [
            lp("a", "b", Label.MATCHING),
            lp("b", "c", Label.NON_MATCHING),
            lp("a", "c", Label.NON_MATCHING),
        ]
        assert is_consistent(labeled)

    def test_all_non_matching_is_consistent(self):
        labeled = [
            lp("a", "b", Label.NON_MATCHING),
            lp("b", "c", Label.NON_MATCHING),
            lp("a", "c", Label.NON_MATCHING),
        ]
        assert is_consistent(labeled)

    def test_long_range_violation(self):
        """The violating non-matching edge may span a long matching chain."""
        labeled = [lp(i, i + 1, Label.MATCHING) for i in range(10)]
        labeled.append(lp(0, 10, Label.NON_MATCHING))
        assert not is_consistent(labeled)
        assert find_violations(labeled) == [Pair(0, 10)]

    @given(consistent_labelings())
    @settings(max_examples=50)
    def test_partition_induced_labelings_are_consistent(self, labeled):
        assert is_consistent(labeled)


class TestFindViolations:
    def test_reports_only_non_matching_edges(self):
        labeled = [
            lp("a", "b", Label.MATCHING),
            lp("b", "c", Label.MATCHING),
            lp("a", "c", Label.NON_MATCHING),
        ]
        assert find_violations(labeled) == [Pair("a", "c")]

    def test_multiple_violations(self):
        labeled = [
            lp("a", "b", Label.MATCHING),
            lp("a", "c", Label.MATCHING),
            lp("a", "d", Label.MATCHING),
            lp("b", "c", Label.NON_MATCHING),
            lp("b", "d", Label.NON_MATCHING),
        ]
        assert set(find_violations(labeled)) == {Pair("b", "c"), Pair("b", "d")}


class TestClosure:
    def test_closure_contains_deduced_pairs(self):
        labeled = [lp("a", "b", Label.MATCHING), lp("b", "c", Label.MATCHING)]
        implied = closure(labeled, [Pair("a", "c"), Pair("a", "z")])
        assert implied == {Pair("a", "c"): Label.MATCHING}

    def test_closure_negative(self):
        labeled = [lp("a", "b", Label.MATCHING), lp("b", "c", Label.NON_MATCHING)]
        implied = closure(labeled, [Pair("a", "c")])
        assert implied[Pair("a", "c")] is Label.NON_MATCHING


class TestEntityPartition:
    def test_partition_of_figure3(self, figure3_pairs, figure3_truth):
        labeled = [
            LabeledPair(p, figure3_truth.label(p)) for p in figure3_pairs.values()
        ]
        clusters, violations = entity_partition(labeled)
        assert not violations
        assert {frozenset(c) for c in clusters} == {
            frozenset({"o1", "o2", "o3"}),
            frozenset({"o4", "o5"}),
            frozenset({"o6"}),
        }

    def test_partition_reports_violations(self):
        labeled = [
            lp("a", "b", Label.MATCHING),
            lp("b", "c", Label.MATCHING),
            lp("a", "c", Label.NON_MATCHING),
        ]
        _, violations = entity_partition(labeled)
        assert violations == [Pair("a", "c")]
