"""Tests for the sequential labeler (Section 3.2) and the Non-Transitive
baseline, including paper Example 2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.cluster_graph import ClusterGraph
from repro.core.oracle import CountingOracle, GroundTruthOracle
from repro.core.pairs import Label, Pair, Provenance, candidate
from repro.core.result import LabelingResult
from repro.core.sequential import (
    SequentialLabeler,
    crowdsourced_count,
    label_non_transitive,
    label_sequential,
)

from ..strategies import worlds


class TestSequentialLabeler:
    def test_labels_every_pair(self, figure3_candidates, figure3_truth):
        result = label_sequential(figure3_candidates, figure3_truth)
        assert result.n_pairs == 8

    def test_all_labels_correct_with_perfect_oracle(
        self, figure3_candidates, figure3_truth
    ):
        result = label_sequential(figure3_candidates, figure3_truth)
        for pair, label in result.labels().items():
            assert label is figure3_truth.label(pair)

    def test_example2_good_order_crowdsources_six(
        self, figure3_pairs, figure3_truth
    ):
        """Example 2: the order p1,p2,p3,p5,p7,p8 (then deduced p4, p6)."""
        order = [figure3_pairs[name] for name in ("p1", "p2", "p4", "p5", "p3", "p6", "p7", "p8")]
        result = label_sequential(order, figure3_truth)
        assert result.n_crowdsourced == 6
        assert result.n_deduced == 2

    def test_example2_deduced_pairs_are_p4_like(self, figure3_pairs, figure3_truth):
        """Labeling p1, p2 first makes p4 = (o1, o3) free."""
        order = [figure3_pairs["p1"], figure3_pairs["p2"], figure3_pairs["p4"]]
        result = label_sequential(order, figure3_truth)
        outcome = result.outcomes[figure3_pairs["p4"]]
        assert outcome.provenance is Provenance.DEDUCED
        assert outcome.label is Label.MATCHING

    def test_heuristic_order_on_figure3(self, figure3_candidates, figure3_truth):
        """The expected order p1..p8 crowdsources 6 pairs: Example 5's run."""
        result = label_sequential(figure3_candidates, figure3_truth)
        assert result.n_crowdsourced == 6
        crowd = set(result.crowdsourced_pairs())
        assert Pair("o1", "o3") not in crowd  # p4 deduced
        assert Pair("o5", "o6") not in crowd  # p8 deduced

    def test_oracle_called_once_per_crowdsourced_pair(
        self, figure3_candidates, figure3_truth
    ):
        counting = CountingOracle(figure3_truth)
        result = label_sequential(figure3_candidates, counting)
        assert counting.n_calls == result.n_crowdsourced

    def test_one_pair_per_round(self, figure3_candidates, figure3_truth):
        result = label_sequential(figure3_candidates, figure3_truth)
        assert all(len(batch) == 1 for batch in result.rounds)
        assert result.n_rounds == result.n_crowdsourced

    def test_continues_from_prepopulated_graph(self, figure3_truth):
        graph = ClusterGraph()
        graph.add_matching("o1", "o2")
        graph.add_matching("o2", "o3")
        labeler = SequentialLabeler()
        result = labeler.run([Pair("o1", "o3")], figure3_truth, graph=graph)
        assert result.n_crowdsourced == 0
        assert result.label_of(Pair("o1", "o3")) is Label.MATCHING

    def test_empty_order(self, figure3_truth):
        result = label_sequential([], figure3_truth)
        assert result.n_pairs == 0
        assert result.n_crowdsourced == 0

    def test_single_pair_always_crowdsourced(self, figure3_truth):
        result = label_sequential([Pair("o1", "o2")], figure3_truth)
        assert result.n_crowdsourced == 1

    def test_accepts_candidate_pairs_and_bare_pairs(self, figure3_truth):
        mixed = [candidate("o1", "o2", 0.9), Pair("o2", "o3")]
        result = label_sequential(mixed, figure3_truth)
        assert result.n_pairs == 2


class TestNonTransitiveBaseline:
    def test_crowdsources_everything(self, figure3_candidates, figure3_truth):
        result = label_non_transitive(figure3_candidates, figure3_truth)
        assert result.n_crowdsourced == 8
        assert result.n_deduced == 0

    def test_single_round(self, figure3_candidates, figure3_truth):
        result = label_non_transitive(figure3_candidates, figure3_truth)
        assert result.n_rounds == 1
        assert len(result.rounds[0]) == 8

    def test_labels_are_correct(self, figure3_candidates, figure3_truth):
        result = label_non_transitive(figure3_candidates, figure3_truth)
        for pair, label in result.labels().items():
            assert label is figure3_truth.label(pair)


class TestProperties:
    @given(worlds())
    @settings(max_examples=60)
    def test_labels_always_match_truth(self, world):
        """With a perfect oracle, deduced labels are always correct."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        result = label_sequential(candidates, truth)
        for pair, label in result.labels().items():
            assert label is truth.label(pair)

    @given(worlds())
    @settings(max_examples=60)
    def test_transitive_never_costs_more_than_baseline(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        assert crowdsourced_count(candidates, truth) <= len(candidates)

    @given(worlds())
    @settings(max_examples=60)
    def test_crowdsourced_plus_deduced_is_total(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        result = label_sequential(candidates, truth)
        assert result.n_crowdsourced + result.n_deduced == result.n_pairs


class TestLabelingResult:
    def test_record_rejects_duplicates(self):
        result = LabelingResult()
        result.record(Pair("a", "b"), Label.MATCHING, Provenance.CROWDSOURCED, 0)
        with pytest.raises(ValueError):
            result.record(Pair("a", "b"), Label.MATCHING, Provenance.DEDUCED, 0)

    def test_matches_and_non_matches_partition(self, figure3_candidates, figure3_truth):
        result = label_sequential(figure3_candidates, figure3_truth)
        assert len(result.matches()) + len(result.non_matches()) == result.n_pairs

    def test_savings_fraction(self, figure3_candidates, figure3_truth):
        result = label_sequential(figure3_candidates, figure3_truth)
        assert result.savings == pytest.approx(2 / 8)

    def test_round_sizes(self, figure3_candidates, figure3_truth):
        result = label_sequential(figure3_candidates, figure3_truth)
        assert result.round_sizes() == [1] * 6

    def test_as_labeled_pairs_preserves_resolution_order(
        self, figure3_candidates, figure3_truth
    ):
        result = label_sequential(figure3_candidates, figure3_truth)
        labeled = result.as_labeled_pairs()
        assert len(labeled) == 8
        assert labeled[0].pair == figure3_candidates[0].pair
