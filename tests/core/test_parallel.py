"""Tests for the parallel labeler (Section 5.1, Algorithms 2-3), including
paper Example 5 and the cost-equivalence property against the sequential
labeler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.oracle import CountingOracle, GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.core.parallel import (
    ParallelLabeler,
    label_parallel,
    parallel_crowdsourced_pairs,
)
from repro.core.sequential import label_sequential

from ..strategies import worlds


class TestParallelCrowdsourcedPairs:
    def test_example5_first_round(self, figure3_pairs):
        """Example 5: with nothing labeled, {p1, p2, p3, p5, p6} must be
        crowdsourced in parallel."""
        order = [figure3_pairs[f"p{i}"] for i in range(1, 9)]
        batch = parallel_crowdsourced_pairs(order, labeled={})
        expected = [figure3_pairs[name] for name in ("p1", "p2", "p3", "p5", "p6")]
        assert batch == expected

    def test_example5_second_round(self, figure3_pairs, figure3_truth):
        """After round one's answers and deductions, only p7 remains."""
        order = [figure3_pairs[f"p{i}"] for i in range(1, 9)]
        labeled = {}
        for name in ("p1", "p2", "p3", "p5", "p6"):
            pair = figure3_pairs[name]
            labeled[pair] = figure3_truth.label(pair)
        # deductions from round one
        labeled[figure3_pairs["p4"]] = Label.MATCHING
        labeled[figure3_pairs["p8"]] = Label.NON_MATCHING
        batch = parallel_crowdsourced_pairs(order, labeled)
        assert batch == [figure3_pairs["p7"]]

    def test_section51_chain_is_fully_parallel(self):
        """Section 5.1 example: (o1,o2), (o2,o3), (o3,o4) can all be
        crowdsourced together."""
        order = [Pair("o1", "o2"), Pair("o2", "o3"), Pair("o3", "o4")]
        assert parallel_crowdsourced_pairs(order, labeled={}) == order

    def test_exclude_suppresses_published_pairs(self, figure3_pairs):
        order = [figure3_pairs[f"p{i}"] for i in range(1, 9)]
        published = {figure3_pairs["p1"], figure3_pairs["p2"]}
        batch = parallel_crowdsourced_pairs(order, labeled={}, exclude=published)
        assert figure3_pairs["p1"] not in batch
        assert figure3_pairs["p2"] not in batch
        assert figure3_pairs["p3"] in batch

    def test_empty_order(self):
        assert parallel_crowdsourced_pairs([], labeled={}) == []

    def test_triangle_third_pair_not_selected(self):
        """In a triangle the third pair is optimistically deducible."""
        order = [Pair("a", "b"), Pair("b", "c"), Pair("a", "c")]
        batch = parallel_crowdsourced_pairs(order, labeled={})
        assert batch == [Pair("a", "b"), Pair("b", "c")]


class TestParallelLabeler:
    def test_example5_round_structure(self, figure3_candidates, figure3_truth):
        result = label_parallel(figure3_candidates, figure3_truth)
        assert result.n_rounds == 2
        assert result.round_sizes() == [5, 1]
        assert result.n_crowdsourced == 6
        assert result.n_deduced == 2

    def test_labels_correct(self, figure3_candidates, figure3_truth):
        result = label_parallel(figure3_candidates, figure3_truth)
        for pair, label in result.labels().items():
            assert label is figure3_truth.label(pair)

    def test_oracle_called_once_per_crowdsourced_pair(
        self, figure3_candidates, figure3_truth
    ):
        counting = CountingOracle(figure3_truth)
        result = label_parallel(figure3_candidates, counting)
        assert counting.n_calls == result.n_crowdsourced

    def test_max_rounds_guard(self, figure3_candidates, figure3_truth):
        labeler = ParallelLabeler()
        with pytest.raises(RuntimeError):
            labeler.run(figure3_candidates, figure3_truth, max_rounds=1)

    def test_empty_order(self, figure3_truth):
        result = label_parallel([], figure3_truth)
        assert result.n_pairs == 0
        assert result.n_rounds == 0

    def test_all_independent_pairs_take_one_round(self, figure3_truth):
        order = [Pair("o1", "o2"), Pair("o3", "o4"), Pair("o5", "o6")]
        result = label_parallel(order, figure3_truth)
        assert result.n_rounds == 1
        assert result.round_sizes() == [3]


class TestCostEquivalence:
    """The headline guarantee of Section 5.1: parallelising never *increases*
    the number of crowdsourced pairs, and every published pair is one the
    sequential labeler would also have had to crowdsource."""

    @given(worlds())
    @settings(max_examples=80)
    def test_never_costs_more_than_sequential(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        sequential = label_sequential(candidates, truth)
        parallel = label_parallel(candidates, truth)
        assert parallel.n_crowdsourced <= sequential.n_crowdsourced

    @given(worlds())
    @settings(max_examples=80)
    def test_crowdsourced_set_is_subset_of_sequential(self, world):
        """Soundness: a selected pair is undeducible under *every* outcome of
        its prefix, so the sequential labeler crowdsources it too."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        sequential = label_sequential(candidates, truth)
        parallel = label_parallel(candidates, truth)
        assert set(parallel.crowdsourced_pairs()) <= set(sequential.crowdsourced_pairs())

    @given(worlds())
    @settings(max_examples=60)
    def test_labels_match_truth(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        result = label_parallel(candidates, truth)
        for pair, label in result.labels().items():
            assert label is truth.label(pair)

    @given(worlds())
    @settings(max_examples=60)
    def test_rounds_never_exceed_crowdsourced(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        result = label_parallel(candidates, truth)
        assert result.n_rounds <= max(result.n_crowdsourced, 1)

    @given(worlds())
    @settings(max_examples=60)
    def test_first_round_contains_first_pair(self, world):
        """The first pair of the order can never be deduced, so it is always
        in round one."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        if not candidates:
            return
        result = label_parallel(candidates, truth)
        assert candidates[0].pair in result.rounds[0]
