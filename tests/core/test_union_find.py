"""Unit and property tests for the union-find substrate."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.union_find import UnionFind


class TestBasics:
    def test_fresh_elements_are_singletons(self):
        uf = UnionFind(["a", "b"])
        assert not uf.connected("a", "b")
        assert uf.n_components == 2

    def test_union_connects(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")

    def test_find_is_lazy_add(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert "new" in uf

    def test_union_returns_surviving_root(self):
        uf = UnionFind()
        root = uf.union("a", "b")
        assert root in ("a", "b")
        assert uf.find("a") == root
        assert uf.find("b") == root

    def test_transitive_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")

    def test_component_size(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        uf.add("d")
        assert uf.component_size("a") == 3
        assert uf.component_size("d") == 1

    def test_n_components_tracks_unions(self):
        uf = UnionFind("abcd")
        assert uf.n_components == 4
        uf.union("a", "b")
        assert uf.n_components == 3
        uf.union("a", "b")  # redundant union is a no-op
        assert uf.n_components == 3

    def test_components_partition_all_elements(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.add("c")
        components = uf.components()
        assert sorted(map(sorted, components)) == [["a", "b"], ["c"]]

    def test_roots(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.add("c")
        assert len(uf.roots()) == 2

    def test_len_counts_elements(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.add("c")
        assert len(uf) == 3

    def test_copy_is_independent(self):
        uf = UnionFind()
        uf.union("a", "b")
        clone = uf.copy()
        clone.union("a", "c")
        assert clone.connected("a", "c")
        assert "c" not in uf  # the copy's lazy add did not leak back
        assert not uf.connected("a", "c")  # (this query lazily adds "c")

    def test_deep_chain_does_not_recurse(self):
        uf = UnionFind()
        for i in range(10_000):
            uf.union(i, i + 1)
        assert uf.connected(0, 10_000)
        assert uf.n_components == 1

    def test_integer_and_string_elements_coexist(self):
        uf = UnionFind()
        uf.union(1, "one")
        assert uf.connected("one", 1)


@st.composite
def edge_lists(draw):
    n = draw(st.integers(2, 30))
    n_edges = draw(st.integers(0, 60))
    edges = [
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(n_edges)
    ]
    return n, [(a, b) for a, b in edges if a != b]


class TestAgainstNetworkx:
    """Union-find must agree with networkx connected components."""

    @given(edge_lists())
    def test_components_match_networkx(self, data):
        n, edges = data
        uf = UnionFind(range(n))
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for a, b in edges:
            uf.union(a, b)
            graph.add_edge(a, b)
        expected = sorted(sorted(c) for c in nx.connected_components(graph))
        actual = sorted(sorted(c) for c in uf.components())
        assert actual == expected

    @given(edge_lists())
    def test_n_components_matches_networkx(self, data):
        n, edges = data
        uf = UnionFind(range(n))
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for a, b in edges:
            uf.union(a, b)
            graph.add_edge(a, b)
        assert uf.n_components == nx.number_connected_components(graph)

    @given(edge_lists())
    def test_connected_queries_match_networkx(self, data):
        n, edges = data
        uf = UnionFind(range(n))
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for a, b in edges:
            uf.union(a, b)
            graph.add_edge(a, b)
        for a in range(min(n, 5)):
            for b in range(min(n, 5)):
                if a != b:
                    assert uf.connected(a, b) == nx.has_path(graph, a, b)
