"""Tests for the ClusterGraph (paper Algorithm 1), including the worked
Examples 1 and 3 and cross-validation against the reference BFS deduction."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.cluster_graph import (
    ClusterGraph,
    ConflictPolicy,
    InconsistentLabelError,
    deduce_label,
)
from repro.core.deduction import deduce_by_search
from repro.core.pairs import Label, LabeledPair, Pair

from ..strategies import consistent_labelings, worlds


class TestPositiveTransitivity:
    def test_two_hop_matching(self):
        graph = ClusterGraph()
        graph.add_matching("a", "b")
        graph.add_matching("b", "c")
        assert graph.deduce(Pair("a", "c")) is Label.MATCHING

    def test_long_matching_chain(self):
        """Lemma 1(1): o_i = o_{i+1} for all i implies o_1 = o_n."""
        graph = ClusterGraph()
        for i in range(50):
            graph.add_matching(i, i + 1)
        assert graph.deduce(Pair(0, 50)) is Label.MATCHING


class TestNegativeTransitivity:
    def test_matching_then_non_matching(self):
        graph = ClusterGraph()
        graph.add_matching("a", "b")
        graph.add_non_matching("b", "c")
        assert graph.deduce(Pair("a", "c")) is Label.NON_MATCHING

    def test_chain_with_single_non_matching(self):
        """Lemma 1(2): one non-matching link anywhere makes o_1 != o_n."""
        for k in range(5):
            graph = ClusterGraph()
            for i in range(5):
                if i == k:
                    graph.add_non_matching(i, i + 1)
                else:
                    graph.add_matching(i, i + 1)
            assert graph.deduce(Pair(0, 5)) is Label.NON_MATCHING, f"break at {k}"

    def test_two_non_matching_edges_block_deduction(self):
        graph = ClusterGraph()
        graph.add_non_matching("a", "b")
        graph.add_non_matching("b", "c")
        assert graph.deduce(Pair("a", "c")) is None


class TestPaperExample1:
    """Example 1 / Figure 2: seven labeled pairs over o1..o7."""

    def test_o3_o5_deduced_matching(self, example1_labeled):
        assert deduce_label(Pair("o3", "o5"), example1_labeled) is Label.MATCHING

    def test_o5_o7_deduced_non_matching(self, example1_labeled):
        assert deduce_label(Pair("o5", "o7"), example1_labeled) is Label.NON_MATCHING

    def test_o1_o7_not_deducible(self, example1_labeled):
        assert deduce_label(Pair("o1", "o7"), example1_labeled) is None


class TestPaperExample3:
    """Example 3: the ClusterGraph for p1..p7 of the running example."""

    @pytest.fixture
    def graph(self, figure3_pairs, figure3_truth):
        graph = ClusterGraph()
        for name in ("p1", "p2", "p3", "p4", "p5", "p6", "p7"):
            pair = figure3_pairs[name]
            graph.add(pair, figure3_truth.label(pair))
        return graph

    def test_three_clusters(self, graph):
        clusters = {frozenset(c) for c in graph.clusters()}
        assert clusters == {
            frozenset({"o1", "o2", "o3"}),
            frozenset({"o4", "o5"}),
            frozenset({"o6"}),
        }

    def test_three_cluster_level_edges(self, graph):
        assert graph.n_non_matching_edges == 3

    def test_p8_deduced_non_matching(self, graph, figure3_pairs):
        assert graph.deduce(figure3_pairs["p8"]) is Label.NON_MATCHING


class TestUnknownObjects:
    def test_both_unknown(self):
        graph = ClusterGraph()
        assert graph.deduce(Pair("x", "y")) is None

    def test_one_unknown(self):
        graph = ClusterGraph()
        graph.add_matching("a", "b")
        assert graph.deduce(Pair("a", "z")) is None

    def test_known_but_unrelated(self):
        graph = ClusterGraph()
        graph.add_matching("a", "b")
        graph.add_matching("c", "d")
        assert graph.deduce(Pair("a", "c")) is None


class TestConflicts:
    def test_strict_raises_on_matching_contradiction(self):
        graph = ClusterGraph(policy=ConflictPolicy.STRICT)
        graph.add_matching("a", "b")
        graph.add_non_matching("b", "c")
        with pytest.raises(InconsistentLabelError):
            graph.add_matching("a", "c")

    def test_strict_raises_on_non_matching_contradiction(self):
        graph = ClusterGraph(policy=ConflictPolicy.STRICT)
        graph.add_matching("a", "b")
        graph.add_matching("b", "c")
        with pytest.raises(InconsistentLabelError):
            graph.add_non_matching("a", "c")

    def test_first_wins_records_conflict(self):
        graph = ClusterGraph(policy=ConflictPolicy.FIRST_WINS)
        graph.add_matching("a", "b")
        graph.add_matching("b", "c")
        applied = graph.add_non_matching("a", "c")
        assert not applied
        assert len(graph.conflicts) == 1
        assert graph.conflicts[0].implied is Label.MATCHING
        # the graph itself is untouched
        assert graph.deduce(Pair("a", "c")) is Label.MATCHING

    def test_redundant_consistent_insert_is_fine(self):
        graph = ClusterGraph()
        graph.add_matching("a", "b")
        graph.add_matching("b", "c")
        assert graph.add_matching("a", "c")  # consistent, allowed


class TestClusterMerging:
    def test_edges_follow_merged_clusters(self):
        """A non-matching edge must survive its endpoint cluster merging."""
        graph = ClusterGraph()
        graph.add_non_matching("a", "x")
        graph.add_matching("x", "y")  # x's cluster grows
        assert graph.deduce(Pair("a", "y")) is Label.NON_MATCHING

    def test_parallel_edges_are_collapsed(self):
        graph = ClusterGraph()
        graph.add_non_matching("a", "x")
        graph.add_non_matching("b", "x")
        graph.add_matching("a", "b")  # both edges now {a,b} -- {x}
        assert graph.n_non_matching_edges == 1

    def test_merge_keeps_all_other_edges(self):
        graph = ClusterGraph()
        graph.add_non_matching("a", "x")
        graph.add_non_matching("b", "y")
        graph.add_matching("a", "b")
        assert graph.deduce(Pair("b", "x")) is Label.NON_MATCHING
        assert graph.deduce(Pair("a", "y")) is Label.NON_MATCHING
        assert graph.n_non_matching_edges == 2

    def test_invariants_after_heavy_merging(self):
        graph = ClusterGraph()
        for i in range(20):
            graph.add_non_matching(f"left{i}", f"right{i}")
        for i in range(19):
            graph.add_matching(f"left{i}", f"left{i + 1}")
        graph.check_invariants()
        assert graph.n_clusters == 21  # one big left cluster + 20 rights


class TestCounters:
    def test_object_and_cluster_counts(self):
        graph = ClusterGraph()
        graph.add_matching("a", "b")
        graph.add_non_matching("c", "d")
        assert graph.n_objects == 4
        assert graph.n_clusters == 3

    def test_edge_counters(self):
        graph = ClusterGraph()
        graph.add_matching("a", "b")
        graph.add_non_matching("a", "c")
        assert graph.n_matching_edges == 1
        assert graph.n_non_matching_edges == 1

    def test_non_matching_cluster_edges_iteration(self):
        graph = ClusterGraph()
        graph.add_non_matching("a", "b")
        graph.add_non_matching("a", "c")
        edges = list(graph.non_matching_cluster_edges())
        assert len(edges) == 2


class TestCopy:
    def test_copy_is_independent(self):
        graph = ClusterGraph()
        graph.add_matching("a", "b")
        clone = graph.copy()
        clone.add_non_matching("a", "c")
        assert graph.deduce(Pair("a", "c")) is None
        assert clone.deduce(Pair("a", "c")) is Label.NON_MATCHING

    def test_copy_preserves_policy(self):
        graph = ClusterGraph(policy=ConflictPolicy.FIRST_WINS)
        assert graph.copy().policy is ConflictPolicy.FIRST_WINS


class TestAgainstReferenceDeduction:
    """ClusterGraph must agree with the Lemma-1 BFS specification on every
    consistent labeled set and every query pair."""

    @given(consistent_labelings())
    def test_matches_bfs_on_consistent_sets(self, labeled):
        graph = ClusterGraph(labeled)
        objects = sorted({o for item in labeled for o in item.pair})
        for i in range(len(objects)):
            for j in range(i + 1, len(objects)):
                query = Pair(objects[i], objects[j])
                assert graph.deduce(query) == deduce_by_search(query, labeled), query

    @given(consistent_labelings())
    def test_invariants_hold_after_any_insert_sequence(self, labeled):
        graph = ClusterGraph(labeled)
        graph.check_invariants()

    @given(worlds())
    def test_deduced_labels_agree_with_ground_truth(self, world):
        """Inserting true labels must only ever deduce true labels."""
        from repro.core.oracle import GroundTruthOracle

        candidates, entity_of = world
        oracle = GroundTruthOracle(entity_of)
        graph = ClusterGraph(
            LabeledPair(c.pair, oracle.label(c.pair)) for c in candidates
        )
        objects = sorted(entity_of)
        for i in range(len(objects)):
            for j in range(i + 1, len(objects)):
                query = Pair(objects[i], objects[j])
                deduced = graph.deduce(query)
                if deduced is not None:
                    assert deduced is oracle.label(query)
