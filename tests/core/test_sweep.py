"""Tests for the incremental deduction-sweep index."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster_graph import ClusterGraph
from repro.core.instant import AnswerPolicy, InstantLabeler
from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.core.sweep import PendingPairIndex

from ..strategies import worlds


class TestIndexBasics:
    def test_union_marks_touching_pairs_dirty(self):
        graph = ClusterGraph()
        graph.add_matching("a", "b")  # before attach: a, b known
        index = PendingPairIndex(graph, [Pair("a", "c"), Pair("x", "y")])
        graph.add_matching("b", "c")  # merges c into {a, b}
        resolved = dict(index.sweep())
        assert resolved == {Pair("a", "c"): Label.MATCHING}
        assert Pair("x", "y") in index

    def test_edge_marks_spanning_pairs_dirty(self):
        graph = ClusterGraph()
        graph.add_matching("a", "b")
        graph.add_matching("c", "d")
        index = PendingPairIndex(graph, [Pair("a", "d"), Pair("a", "x")])
        graph.add_non_matching("b", "c")
        resolved = dict(index.sweep())
        assert resolved == {Pair("a", "d"): Label.NON_MATCHING}

    def test_initial_pairs_swept_once(self):
        """Pairs deducible at attach time resolve on the first sweep."""
        graph = ClusterGraph()
        graph.add_matching("a", "b")
        graph.add_matching("b", "c")
        index = PendingPairIndex(graph, [Pair("a", "c")])
        assert dict(index.sweep()) == {Pair("a", "c"): Label.MATCHING}

    def test_unseen_endpoints_migrate_on_note(self):
        graph = ClusterGraph()
        index = PendingPairIndex(graph, [Pair("a", "c")])
        graph.add_matching("a", "b")
        index.note_objects_seen("a", "b")
        graph.add_matching("b", "c")
        index.note_objects_seen("b", "c")
        assert dict(index.sweep()) == {Pair("a", "c"): Label.MATCHING}

    def test_removed_pairs_never_resolve(self):
        graph = ClusterGraph()
        index = PendingPairIndex(graph, [Pair("a", "c")])
        index.remove(Pair("a", "c"))
        graph.add_matching("a", "b")
        graph.add_matching("b", "c")
        index.note_objects_seen("a", "b", "c")
        assert index.sweep() == []
        assert len(index) == 0

    def test_add_pending_after_attach(self):
        graph = ClusterGraph()
        graph.add_matching("a", "b")
        index = PendingPairIndex(graph, [])
        index.add_pending(Pair("a", "b"))
        assert dict(index.sweep()) == {Pair("a", "b"): Label.MATCHING}

    def test_single_listener_enforced(self):
        graph = ClusterGraph()
        PendingPairIndex(graph, [])
        with pytest.raises(ValueError):
            PendingPairIndex(graph, [])

    def test_invariants_after_activity(self):
        graph = ClusterGraph()
        index = PendingPairIndex(graph, [Pair("a", "c"), Pair("b", "d")])
        graph.add_matching("a", "b")
        index.note_objects_seen("a", "b")
        graph.add_non_matching("b", "c")
        index.note_objects_seen("b", "c")
        index.sweep()
        index.check_invariants()


class TestEquivalenceWithNaiveSweep:
    """The indexed sweep must be an exact drop-in for the full scan."""

    @given(worlds(max_objects=10, max_pairs=20), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_instant_labeler_identical_results(self, world, seed):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        runs = {}
        for use_index in (False, True):
            labeler = InstantLabeler(
                instant_decision=True,
                answer_policy=AnswerPolicy.RANDOM,
                seed=seed,
                use_index=use_index,
            )
            runs[use_index] = labeler.run(candidates, truth)
        naive, indexed = runs[False], runs[True]
        assert indexed.result.labels() == naive.result.labels()
        assert indexed.n_crowdsourced == naive.n_crowdsourced
        assert indexed.trace == naive.trace
        assert [set(b) for b in indexed.result.rounds] == [
            set(b) for b in naive.result.rounds
        ]

    @given(worlds(max_objects=10, max_pairs=20))
    @settings(max_examples=40, deadline=None)
    def test_incremental_resolutions_match_full_rescan(self, world):
        """Drive a graph with true labels; after every insert the index's
        resolutions must equal a from-scratch deducibility scan."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        pairs = list({c.pair for c in candidates})
        graph = ClusterGraph()
        index = PendingPairIndex(graph, pairs)
        resolved_by_index = {}
        inserted = []
        for pair in pairs:
            index.remove(pair)  # "publish" it: the crowd answers it
            graph.add(pair, truth.label(pair))
            index.note_objects_seen(pair.left, pair.right)
            inserted.append(pair)
            for resolved_pair, label in index.sweep():
                resolved_by_index[resolved_pair] = label
            # ground truth: every non-inserted pair deducible from `graph`
            expected = {
                p: graph.deduce(p)
                for p in pairs
                if p not in inserted and graph.deduce(p) is not None
            }
            covered = {p: l for p, l in resolved_by_index.items() if p not in inserted}
            assert covered == expected
