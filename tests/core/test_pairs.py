"""Unit tests for the pair/label primitives."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pairs import (
    CandidatePair,
    Label,
    LabeledPair,
    Pair,
    candidate,
    ensure_unique,
    make_pair,
    objects_of,
    pairs_of,
)


class TestLabel:
    def test_negate_matching(self):
        assert Label.MATCHING.negate() is Label.NON_MATCHING

    def test_negate_non_matching(self):
        assert Label.NON_MATCHING.negate() is Label.MATCHING

    def test_double_negation_is_identity(self):
        for label in Label:
            assert label.negate().negate() is label

    def test_values_match_paper_vocabulary(self):
        assert Label.MATCHING.value == "matching"
        assert Label.NON_MATCHING.value == "non-matching"


class TestPair:
    def test_unordered_equality(self):
        assert Pair("a", "b") == Pair("b", "a")

    def test_unordered_hash(self):
        assert hash(Pair("a", "b")) == hash(Pair("b", "a"))

    def test_distinct_pairs_differ(self):
        assert Pair("a", "b") != Pair("a", "c")

    def test_rejects_identical_objects(self):
        with pytest.raises(ValueError):
            Pair("a", "a")

    def test_canonical_order_is_deterministic(self):
        assert Pair("b", "a").left == Pair("a", "b").left

    def test_iteration_yields_both_objects(self):
        assert set(Pair("x", "y")) == {"x", "y"}

    def test_contains(self):
        pair = Pair("x", "y")
        assert "x" in pair
        assert "y" in pair
        assert "z" not in pair

    def test_other(self):
        pair = Pair("x", "y")
        assert pair.other("x") == "y"
        assert pair.other("y") == "x"

    def test_other_rejects_non_member(self):
        with pytest.raises(KeyError):
            Pair("x", "y").other("z")

    def test_heterogeneous_types(self):
        pair = Pair(1, "1")
        assert 1 in pair
        assert "1" in pair
        assert pair == Pair("1", 1)

    def test_usable_in_sets(self):
        pairs = {Pair("a", "b"), Pair("b", "a"), Pair("a", "c")}
        assert len(pairs) == 2

    @given(st.text(min_size=1), st.text(min_size=1))
    def test_symmetry_property(self, a, b):
        if a == b:
            with pytest.raises(ValueError):
                Pair(a, b)
        else:
            assert Pair(a, b) == Pair(b, a)
            assert hash(Pair(a, b)) == hash(Pair(b, a))


class _Opaque:
    """Deliberately keeps object.__repr__ (address-based)."""


class _Identified:
    def __init__(self, key: str) -> None:
        self.key = key

    def __repr__(self) -> str:
        return f"_Identified({self.key!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, _Identified) and other.key == self.key

    def __hash__(self) -> int:
        return hash(self.key)


class TestReprGuard:
    """Regression: canonicalisation orders members by ``(type, repr)``, so
    an address-based default repr would shuffle left/right across processes
    and silently break journal encoding and state fingerprints.  Such
    objects are rejected at construction with a pointer at the scalar-id
    contract."""

    def test_default_repr_objects_are_rejected(self):
        with pytest.raises(TypeError, match="scalar object ids"):
            Pair(_Opaque(), _Opaque())

    def test_error_names_the_offending_type(self):
        with pytest.raises(TypeError, match="_Opaque"):
            Pair(_Opaque(), "a")

    def test_custom_deterministic_repr_is_accepted(self):
        pair = Pair(_Identified("z"), _Identified("a"))
        assert pair == Pair(_Identified("a"), _Identified("z"))
        assert pair.left == _Identified("a")

    @pytest.mark.parametrize("obj", ["x", 3, 2.5, True, None])
    def test_scalar_ids_are_accepted(self, obj):
        pair = Pair(obj, "other" if obj != "other" else "another")
        assert obj in pair


class TestCandidatePair:
    def test_likelihood_bounds(self):
        with pytest.raises(ValueError):
            CandidatePair(Pair("a", "b"), 1.5)
        with pytest.raises(ValueError):
            CandidatePair(Pair("a", "b"), -0.1)

    def test_default_likelihood(self):
        assert CandidatePair(Pair("a", "b")).likelihood == 0.5

    def test_accessors(self):
        cand = candidate("b", "a", 0.7)
        assert {cand.left, cand.right} == {"a", "b"}
        assert cand.likelihood == 0.7

    def test_sort_key_orders_by_likelihood(self):
        low = candidate("a", "b", 0.2)
        high = candidate("c", "d", 0.9)
        assert low.sort_key() < high.sort_key()


class TestLabeledPair:
    def test_is_matching(self):
        assert LabeledPair(Pair("a", "b"), Label.MATCHING).is_matching
        assert not LabeledPair(Pair("a", "b"), Label.NON_MATCHING).is_matching

    def test_unpacking(self):
        pair, label = LabeledPair(Pair("a", "b"), Label.MATCHING)
        assert pair == Pair("a", "b")
        assert label is Label.MATCHING


class TestHelpers:
    def test_make_pair(self):
        assert make_pair("a", "b") == Pair("a", "b")

    def test_pairs_of_preserves_order(self):
        cands = [candidate("a", "b", 0.1), candidate("c", "d", 0.9)]
        assert pairs_of(cands) == [Pair("a", "b"), Pair("c", "d")]

    def test_objects_of(self):
        assert objects_of([Pair("a", "b"), Pair("b", "c")]) == {"a", "b", "c"}

    def test_ensure_unique_drops_duplicates(self):
        cands = [candidate("a", "b", 0.5), candidate("b", "a", 0.5)]
        assert len(ensure_unique(cands)) == 1

    def test_ensure_unique_rejects_conflicting_likelihoods(self):
        cands = [candidate("a", "b", 0.5), candidate("b", "a", 0.6)]
        with pytest.raises(ValueError):
            ensure_unique(cands)

    def test_ensure_unique_keeps_first_occurrence_order(self):
        cands = [
            candidate("a", "b", 0.5),
            candidate("c", "d", 0.9),
            candidate("a", "b", 0.5),
        ]
        unique = ensure_unique(cands)
        assert [c.pair for c in unique] == [Pair("a", "b"), Pair("c", "d")]
