"""Tests for the framework facade and oracle utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.framework import (
    TransitiveJoinFramework,
    label_baseline,
    label_with_transitivity,
)
from repro.core.oracle import (
    CountingOracle,
    FunctionOracle,
    GroundTruthOracle,
    MappingOracle,
    NoisyOracle,
    oracle_from,
)
from repro.core.ordering import OptimalOrderSorter
from repro.core.pairs import Label, Pair

from ..strategies import worlds


class TestFramework:
    @pytest.mark.parametrize("labeler", ["sequential", "parallel", "instant", "instant+nf"])
    def test_every_labeler_costs_six_on_figure3(
        self, labeler, figure3_candidates, figure3_truth
    ):
        framework = TransitiveJoinFramework(labeler=labeler)
        run = framework.label(figure3_candidates, figure3_truth)
        assert run.result.n_crowdsourced == 6
        assert run.oracle_calls == 6

    def test_unknown_labeler_rejected(self):
        with pytest.raises(ValueError):
            TransitiveJoinFramework(labeler="quantum")

    def test_default_sorter_is_expected_order(self):
        framework = TransitiveJoinFramework()
        assert type(framework.sorter).__name__ == "ExpectedOrderSorter"

    def test_custom_sorter_is_used(self, figure3_candidates, figure3_truth):
        framework = TransitiveJoinFramework(
            sorter=OptimalOrderSorter(figure3_truth), labeler="sequential"
        )
        run = framework.label(figure3_candidates, figure3_truth)
        assert run.result.n_crowdsourced == 6

    def test_instant_run_attached_only_for_instant(self, figure3_candidates, figure3_truth):
        parallel_run = TransitiveJoinFramework(labeler="parallel").label(
            figure3_candidates, figure3_truth
        )
        instant_run = TransitiveJoinFramework(labeler="instant").label(
            figure3_candidates, figure3_truth
        )
        assert parallel_run.instant is None
        assert instant_run.instant is not None

    def test_label_with_transitivity_helper(self, figure3_candidates, figure3_truth):
        result = label_with_transitivity(figure3_candidates, figure3_truth)
        assert result.n_crowdsourced == 6

    def test_baseline_crowdsources_all(self, figure3_candidates, figure3_truth):
        result = label_baseline(figure3_candidates, figure3_truth)
        assert result.n_crowdsourced == len(figure3_candidates)

    @given(worlds())
    @settings(max_examples=40)
    def test_all_labelers_agree_on_cost(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        costs = {
            name: TransitiveJoinFramework(labeler=name)
            .label(candidates, truth)
            .result.n_crowdsourced
            for name in ("sequential", "parallel", "instant", "instant+nf")
        }
        assert len(set(costs.values())) == 1, costs


class TestOracles:
    def test_ground_truth_oracle(self):
        oracle = GroundTruthOracle({"a": 1, "b": 1, "c": 2})
        assert oracle.label(Pair("a", "b")) is Label.MATCHING
        assert oracle.label(Pair("a", "c")) is Label.NON_MATCHING

    def test_unknown_objects_are_singletons(self):
        oracle = GroundTruthOracle({"a": 1})
        assert oracle.label(Pair("a", "mystery")) is Label.NON_MATCHING
        assert oracle.label(Pair("ghost", "mystery")) is Label.NON_MATCHING

    def test_mapping_oracle_raises_on_unknown(self):
        oracle = MappingOracle({Pair("a", "b"): Label.MATCHING})
        assert oracle.label(Pair("a", "b")) is Label.MATCHING
        with pytest.raises(KeyError):
            oracle.label(Pair("x", "y"))

    def test_function_oracle(self):
        oracle = FunctionOracle(lambda pair: Label.MATCHING)
        assert oracle.label(Pair("a", "b")) is Label.MATCHING

    def test_counting_oracle(self):
        base = GroundTruthOracle({"a": 1, "b": 1})
        counting = CountingOracle(base)
        counting.label(Pair("a", "b"))
        counting.label(Pair("a", "b"))
        assert counting.n_calls == 2
        assert counting.asked(Pair("a", "b"))

    def test_noisy_oracle_error_rate_zero_is_exact(self):
        base = GroundTruthOracle({"a": 1, "b": 1})
        noisy = NoisyOracle(base, error_rate=0.0, seed=1)
        assert noisy.label(Pair("a", "b")) is Label.MATCHING

    def test_noisy_oracle_error_rate_one_always_flips(self):
        base = GroundTruthOracle({"a": 1, "b": 1})
        noisy = NoisyOracle(base, error_rate=1.0, seed=1)
        assert noisy.label(Pair("a", "b")) is Label.NON_MATCHING

    def test_noisy_oracle_is_memoised(self):
        base = GroundTruthOracle({"a": 1, "b": 1, "c": 2})
        noisy = NoisyOracle(base, error_rate=0.5, seed=42)
        first = noisy.label(Pair("a", "b"))
        assert all(noisy.label(Pair("a", "b")) is first for _ in range(10))

    def test_noisy_oracle_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            NoisyOracle(GroundTruthOracle({}), error_rate=1.5)

    def test_oracle_from_mapping(self):
        oracle = oracle_from({"a": 1, "b": 1})
        assert oracle.label(Pair("a", "b")) is Label.MATCHING

    def test_oracle_from_callable(self):
        oracle = oracle_from(lambda pair: Label.NON_MATCHING)
        assert oracle.label(Pair("a", "b")) is Label.NON_MATCHING

    def test_oracle_from_oracle_passthrough(self):
        base = GroundTruthOracle({"a": 1})
        assert oracle_from(base) is base

    def test_oracle_from_rejects_garbage(self):
        with pytest.raises(TypeError):
            oracle_from(42)
