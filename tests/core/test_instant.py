"""Tests for the event-driven labeler with instant-decision and
non-matching-first optimisations (Section 5.2 / Figure 15)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.instant import (
    AnswerPolicy,
    InstantLabeler,
    label_instant,
)
from repro.core.oracle import CountingOracle, GroundTruthOracle
from repro.core.parallel import label_parallel
from repro.core.sequential import label_sequential

from ..strategies import worlds


class TestInstantLabelerBasics:
    def test_labels_everything(self, figure3_candidates, figure3_truth):
        run = label_instant(figure3_candidates, figure3_truth)
        assert run.result.n_pairs == 8

    def test_labels_correct(self, figure3_candidates, figure3_truth):
        run = label_instant(figure3_candidates, figure3_truth)
        for pair, label in run.result.labels().items():
            assert label is figure3_truth.label(pair)

    def test_trace_records_every_answer(self, figure3_candidates, figure3_truth):
        run = label_instant(figure3_candidates, figure3_truth)
        assert len(run.trace) == run.n_crowdsourced
        assert run.trace[-1].n_answered == run.n_crowdsourced

    def test_pool_empty_at_end(self, figure3_candidates, figure3_truth):
        run = label_instant(figure3_candidates, figure3_truth)
        assert run.trace[-1].n_available == 0

    def test_oracle_calls_equal_crowdsourced(self, figure3_candidates, figure3_truth):
        counting = CountingOracle(figure3_truth)
        run = label_instant(figure3_candidates, counting)
        assert counting.n_calls == run.n_crowdsourced

    def test_deterministic_given_seed(self, figure3_candidates, figure3_truth):
        run1 = label_instant(figure3_candidates, figure3_truth, seed=5)
        run2 = label_instant(figure3_candidates, figure3_truth, seed=5)
        assert run1.trace == run2.trace


class TestAnswerPolicies:
    def test_fifo_answers_in_publication_order(self, figure3_candidates, figure3_truth):
        run = label_instant(
            figure3_candidates, figure3_truth, answer_policy=AnswerPolicy.FIFO
        )
        crowdsourced = run.result.crowdsourced_pairs()
        answered = [o.pair for o in run.result if o.crowdsourced]
        # FIFO with no mid-run publishes preserves the publication order of
        # the first batch.
        first_batch = run.result.rounds[0]
        assert answered[: len(first_batch)] == first_batch
        assert set(crowdsourced) == set(answered)

    def test_nf_answers_least_likely_first(self, figure3_candidates, figure3_truth):
        run = label_instant(
            figure3_candidates,
            figure3_truth,
            answer_policy=AnswerPolicy.NON_MATCHING_FIRST,
        )
        likelihood = {c.pair: c.likelihood for c in figure3_candidates}
        first_batch = run.result.rounds[0]
        first_answered = next(o.pair for o in run.result if o.crowdsourced)
        assert likelihood[first_answered] == min(likelihood[p] for p in first_batch)


class TestCostEquivalence:
    """ID/NF change *when* pairs are published, never *how many*."""

    @given(worlds())
    @settings(max_examples=50)
    def test_instant_never_costs_more_than_sequential(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        sequential = label_sequential(candidates, truth)
        run = label_instant(candidates, truth, seed=3)
        assert run.n_crowdsourced <= sequential.n_crowdsourced

    @given(worlds())
    @settings(max_examples=50)
    def test_instant_crowdsourced_subset_of_sequential(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        sequential = label_sequential(candidates, truth)
        run = label_instant(candidates, truth, seed=3)
        assert set(run.result.crowdsourced_pairs()) <= set(
            sequential.crowdsourced_pairs()
        )

    @given(worlds())
    @settings(max_examples=50)
    def test_non_instant_mode_matches_parallel_rounds(self, world):
        """With instant decision off, publish events replicate the
        round-based algorithm's batches."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        parallel = label_parallel(candidates, truth)
        run = label_instant(candidates, truth, instant_decision=False, seed=1)
        assert run.result.round_sizes() == parallel.round_sizes()
        assert [set(b) for b in run.result.rounds] == [set(b) for b in parallel.rounds]

    @given(worlds())
    @settings(max_examples=50)
    def test_nf_policy_never_costs_more(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        sequential = label_sequential(candidates, truth)
        run = label_instant(
            candidates, truth, answer_policy=AnswerPolicy.NON_MATCHING_FIRST
        )
        assert run.n_crowdsourced <= sequential.n_crowdsourced

    @given(worlds())
    @settings(max_examples=50)
    def test_labels_match_truth(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        run = label_instant(candidates, truth, seed=9)
        for pair, label in run.result.labels().items():
            assert label is truth.label(pair)


class TestAvailabilityBehaviour:
    """The qualitative Figure-15 claims on the running example."""

    def test_id_keeps_pool_at_least_as_full_on_average(
        self, figure3_candidates, figure3_truth
    ):
        plain = label_instant(
            figure3_candidates, figure3_truth, instant_decision=False, seed=11
        )
        with_id = label_instant(
            figure3_candidates, figure3_truth, instant_decision=True, seed=11
        )
        assert with_id.mean_availability() >= plain.mean_availability() - 1e-9

    def test_plain_parallel_drains_pool_between_rounds(
        self, figure3_candidates, figure3_truth
    ):
        plain = label_instant(
            figure3_candidates, figure3_truth, instant_decision=False, seed=2
        )
        # the pool hits zero once per round boundary
        zeros = sum(1 for point in plain.trace if point.n_available == 0)
        assert zeros >= plain.result.n_rounds

    def test_publish_events_cover_all_crowdsourced(
        self, figure3_candidates, figure3_truth
    ):
        run = label_instant(figure3_candidates, figure3_truth, seed=4)
        published = sum(size for _, size in run.publish_events)
        assert published == run.n_crowdsourced

    def test_starvation_count_is_zero_for_figure3_id(self, figure3_candidates, figure3_truth):
        run = label_instant(figure3_candidates, figure3_truth, seed=4)
        # mid-run the ID labeler never leaves the platform empty here
        assert run.starvation_count(below=1) == 0
