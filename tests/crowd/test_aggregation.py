"""Tests for majority voting and assignment aggregation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pairs import Label, Pair
from repro.crowd.aggregation import (
    aggregate_assignments,
    agreement_rate,
    majority_vote,
    unanimous_or,
)
from repro.crowd.hit import HIT, Assignment

M, N = Label.MATCHING, Label.NON_MATCHING


class TestMajorityVote:
    def test_unanimous(self):
        assert majority_vote([M, M, M]) is M
        assert majority_vote([N, N, N]) is N

    def test_two_to_one(self):
        assert majority_vote([M, M, N]) is M
        assert majority_vote([N, M, N]) is N

    def test_tie_breaks_conservatively_by_default(self):
        assert majority_vote([M, N]) is N

    def test_custom_tie_break(self):
        assert majority_vote([M, N], tie_break=M) is M

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            majority_vote([])

    @given(st.lists(st.sampled_from([M, N]), min_size=1, max_size=9))
    def test_majority_vote_matches_count(self, answers):
        result = majority_vote(answers)
        matching = answers.count(M)
        non_matching = answers.count(N)
        if matching > non_matching:
            assert result is M
        elif non_matching > matching:
            assert result is N
        else:
            assert result is N  # the default tie-break


class TestUnanimousOr:
    def test_unanimous_wins(self):
        assert unanimous_or([M, M], fallback=N) is M

    def test_disagreement_falls_back(self):
        assert unanimous_or([M, N], fallback=N) is N

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            unanimous_or([], fallback=M)


def _assignment(hit, worker_id, labels):
    answers = dict(zip(hit.pairs, labels))
    return Assignment(hit=hit, worker_id=worker_id, answers=answers)


class TestAggregateAssignments:
    @pytest.fixture
    def hit(self):
        return HIT(hit_id=0, pairs=(Pair("a", "b"), Pair("c", "d")), n_assignments=3)

    def test_per_pair_majority(self, hit):
        assignments = [
            _assignment(hit, 1, [M, N]),
            _assignment(hit, 2, [M, M]),
            _assignment(hit, 3, [N, N]),
        ]
        labels = aggregate_assignments(assignments)
        assert labels[Pair("a", "b")] is M
        assert labels[Pair("c", "d")] is N

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_assignments([])

    def test_mixed_hits_rejected(self, hit):
        other = HIT(hit_id=1, pairs=(Pair("x", "y"),))
        assignments = [
            _assignment(hit, 1, [M, N]),
            _assignment(other, 2, [M]),
        ]
        with pytest.raises(ValueError):
            aggregate_assignments(assignments)

    def test_agreement_rate(self, hit):
        assignments = [
            _assignment(hit, 1, [M, N]),
            _assignment(hit, 2, [M, M]),
            _assignment(hit, 3, [M, N]),
        ]
        assert agreement_rate(assignments) == pytest.approx(0.5)

    def test_agreement_rate_empty_raises(self):
        with pytest.raises(ValueError):
            agreement_rate([])
