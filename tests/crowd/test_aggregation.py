"""Tests for majority voting and assignment aggregation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.crowd.aggregation import (
    QuorumError,
    WeightedAggregation,
    aggregate_assignments,
    agreement_rate,
    majority_vote,
    summarize_assignments,
    summarize_votes,
    unanimous_or,
)
from repro.crowd.hit import HIT, Assignment
from repro.crowd.latency import ZeroLatency
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.clients import SimulatedPlatformClient
from repro.crowd.worker import make_worker_pool
from repro.engine import AsyncDispatch, RuntimeMode

from ..conftest import FIGURE3_ENTITIES

M, N = Label.MATCHING, Label.NON_MATCHING


class TestMajorityVote:
    def test_unanimous(self):
        assert majority_vote([M, M, M]) is M
        assert majority_vote([N, N, N]) is N

    def test_two_to_one(self):
        assert majority_vote([M, M, N]) is M
        assert majority_vote([N, M, N]) is N

    def test_tie_breaks_conservatively_by_default(self):
        assert majority_vote([M, N]) is N

    def test_custom_tie_break(self):
        assert majority_vote([M, N], tie_break=M) is M

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            majority_vote([])

    @given(st.lists(st.sampled_from([M, N]), min_size=1, max_size=9))
    def test_majority_vote_matches_count(self, answers):
        result = majority_vote(answers)
        matching = answers.count(M)
        non_matching = answers.count(N)
        if matching > non_matching:
            assert result is M
        elif non_matching > matching:
            assert result is N
        else:
            assert result is N  # the default tie-break


class TestUnanimousOr:
    def test_unanimous_wins(self):
        assert unanimous_or([M, M], fallback=N) is M

    def test_disagreement_falls_back(self):
        assert unanimous_or([M, N], fallback=N) is N

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            unanimous_or([], fallback=M)


def _assignment(hit, worker_id, labels):
    answers = dict(zip(hit.pairs, labels))
    return Assignment(hit=hit, worker_id=worker_id, answers=answers)


class TestAggregateAssignments:
    @pytest.fixture
    def hit(self):
        return HIT(hit_id=0, pairs=(Pair("a", "b"), Pair("c", "d")), n_assignments=3)

    def test_per_pair_majority(self, hit):
        assignments = [
            _assignment(hit, 1, [M, N]),
            _assignment(hit, 2, [M, M]),
            _assignment(hit, 3, [N, N]),
        ]
        labels = aggregate_assignments(assignments)
        assert labels[Pair("a", "b")] is M
        assert labels[Pair("c", "d")] is N

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_assignments([])

    def test_mixed_hits_rejected(self, hit):
        other = HIT(hit_id=1, pairs=(Pair("x", "y"),))
        assignments = [
            _assignment(hit, 1, [M, N]),
            _assignment(other, 2, [M]),
        ]
        with pytest.raises(ValueError):
            aggregate_assignments(assignments)

    def test_agreement_rate(self, hit):
        assignments = [
            _assignment(hit, 1, [M, N]),
            _assignment(hit, 2, [M, M]),
            _assignment(hit, 3, [M, N]),
        ]
        assert agreement_rate(assignments) == pytest.approx(0.5)

    def test_agreement_rate_empty_raises(self):
        with pytest.raises(ValueError):
            agreement_rate([])


def _partial(hit, worker_id, answers):
    return Assignment(hit=hit, worker_id=worker_id, answers=answers, partial=True)


class TestPartialAssignments:
    """Regression: partial assignments (abandoned mid-HIT, or drained
    leftovers from an expired HIT) used to crash aggregation with a bare
    ``KeyError``.  Missing answers are abstentions; quorum failures surface
    as an explicit :class:`QuorumError` or a droppable pair."""

    @pytest.fixture
    def hit(self):
        return HIT(hit_id=0, pairs=(Pair("a", "b"), Pair("c", "d")), n_assignments=3)

    def test_missing_answer_counts_as_abstention_not_keyerror(self, hit):
        assignments = [
            _assignment(hit, 1, [M, N]),
            _assignment(hit, 2, [M, M]),
            _partial(hit, 3, {hit.pairs[0]: N}),  # abandoned the second pair
        ]
        summaries = summarize_assignments(assignments)
        assert summaries[hit.pairs[0]].n_votes == 3
        assert summaries[hit.pairs[0]].n_abstentions == 0
        assert summaries[hit.pairs[1]].n_votes == 2
        assert summaries[hit.pairs[1]].n_abstentions == 1
        labels = aggregate_assignments(assignments)
        assert labels[hit.pairs[0]] is M
        assert labels[hit.pairs[1]] is N  # 1-1 tie falls back conservatively

    def test_complete_assignment_still_requires_every_answer(self, hit):
        with pytest.raises(ValueError, match="missing answers"):
            Assignment(hit=hit, worker_id=1, answers={hit.pairs[0]: M})

    def test_under_quorum_raises_a_clear_quorum_error(self, hit):
        assignments = [
            _assignment(hit, 1, [M, N]),
            _partial(hit, 2, {hit.pairs[0]: M}),
        ]
        with pytest.raises(QuorumError, match="quorum not met") as excinfo:
            aggregate_assignments(assignments, min_votes=2)
        assert excinfo.value.pairs == {hit.pairs[1]: 1}
        assert excinfo.value.min_votes == 2

    def test_lenient_mode_drops_under_quorum_pairs_for_reissue(self, hit):
        assignments = [
            _assignment(hit, 1, [M, N]),
            _partial(hit, 2, {hit.pairs[0]: M}),
        ]
        labels = aggregate_assignments(assignments, min_votes=2, strict=False)
        assert labels == {hit.pairs[0]: M}

    def test_pair_nobody_answered_is_never_silently_labeled(self, hit):
        assignments = [
            _partial(hit, 1, {hit.pairs[0]: M}),
            _partial(hit, 2, {hit.pairs[0]: M}),
        ]
        with pytest.raises(QuorumError):
            aggregate_assignments(assignments)
        lenient = aggregate_assignments(assignments, strict=False)
        assert hit.pairs[1] not in lenient


class TestVoteDiagnostics:
    """Regression: tie-breaks used to be invisible — an even split silently
    became NON_MATCHING.  Summaries expose margin/confidence/tie_broken."""

    def test_exact_tie_is_flagged(self):
        summary = summarize_votes([M, N])
        assert summary.label is N
        assert summary.tie_broken
        assert summary.margin == 0.0
        assert summary.confidence == 0.5

    def test_consensus_margins(self):
        summary = summarize_votes([M, M, M, N])
        assert summary.label is M
        assert not summary.tie_broken
        assert summary.margin == pytest.approx(2.0)
        assert summary.confidence == pytest.approx(0.75)

    def test_weighted_votes_can_overturn_a_flat_tie(self):
        summary = summarize_votes([M, N], weights=[2.5, 1.0])
        assert summary.label is M
        assert not summary.tie_broken
        assert summary.margin == pytest.approx(1.5)

    @given(st.lists(st.sampled_from([M, N]), min_size=1, max_size=8))
    def test_margin_and_confidence_are_consistent(self, answers):
        summary = summarize_votes(answers)
        total = summary.matching_weight + summary.non_matching_weight
        assert total == pytest.approx(len(answers))
        assert summary.margin >= 0.0
        assert 0.5 <= summary.confidence <= 1.0
        assert summary.tie_broken == (summary.margin == 0.0)


class TestExpiryReissueRegression:
    """The full aggregation path stays correct across expired-and-reissued
    HITs: a seeded fraction of HITs is abandoned, re-issued, and aggregated
    by the quality-aware layer — every pair still ends with its true label."""

    def test_labels_survive_expiry_reissue_with_weighted_aggregation(self):
        truth = GroundTruthOracle(FIGURE3_ENTITIES)
        objects = sorted(FIGURE3_ENTITIES)
        pairs = [
            Pair(a, b)
            for i, a in enumerate(objects)
            for b in objects[i + 1 :]
        ]

        def client_factory(oracle):
            platform = SimulatedPlatform(
                workers=make_worker_pool(6, seed=5),
                truth=oracle,
                latency=ZeroLatency(),
                batch_size=2,
                n_assignments=3,
                seed=5,
                aggregation=WeightedAggregation(),
            )
            return SimulatedPlatformClient(
                platform, expire_probability=0.4, expire_seed=7
            )

        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            client_factory=client_factory,
            aggregation=WeightedAggregation(),
        )
        result = dispatch.run(pairs, truth)
        assert set(result.labels()) == set(pairs)
        for pair, label in result.labels().items():
            assert label is truth.label(pair)
