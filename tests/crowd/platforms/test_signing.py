"""SigV4 signing: frozen known-good signatures + an independent re-derivation.

Following the repo's frozen-reference differential pattern
(docs/backends.md): the vectors below were computed once and frozen —
any refactor of ``repro.crowd.platforms.signing`` that changes a single
byte of the canonicalisation breaks them loudly.  The property test then
re-derives signatures with a deliberately independent minimal SigV4
implementation (no shared helpers), over hypothesis-generated requests.
"""

from __future__ import annotations

import hashlib
import hmac
from datetime import datetime, timezone

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd.platforms.signing import (
    Credentials,
    MissingCredentialsError,
    parse_authorization,
    sign_request,
    verify_signature,
)

CREDS = Credentials("AKIDEXAMPLE", "wJalrXUtnFEMI-K7MDENG-bPxRfiCY")

# (kwargs, frozen signature) — regenerate ONLY for an intentional wire change.
FROZEN_VECTORS = [
    (
        dict(
            method="POST",
            url="https://mturk-requester.us-east-1.amazonaws.com/",
            headers={
                "Content-Type": "application/x-amz-json-1.1",
                "X-Amz-Target": "MTurkRequesterServiceV20170117.CreateHIT",
            },
            body=b'{"Title": "t"}',
            region="us-east-1",
            now=datetime(2015, 8, 30, 12, 36, 0, tzinfo=timezone.utc),
        ),
        "78e52a8356acc1ab0b30ab7f405153931b2d0bbbf33edcbe36eb1a64057301f0",
    ),
    (
        dict(
            method="GET",
            url="https://example.com/path%20x/y",
            headers={},
            body=b"",
            region="eu-west-2",
            service="execute-api",
            now=datetime(2020, 2, 29, 23, 59, 59, tzinfo=timezone.utc),
        ),
        "dcc5cf53bfae6c35995f3a29e27d262668646425bda1de15dd78d8bb90a00819",
    ),
]


@pytest.mark.parametrize("kwargs,expected", FROZEN_VECTORS)
def test_frozen_signature_vectors(kwargs, expected):
    signed = sign_request(CREDS, **kwargs)
    assert signed.signature == expected
    assert expected in signed.headers["Authorization"]


def test_frozen_session_token_vector():
    signed = sign_request(
        Credentials(CREDS.access_key, CREDS.secret_key, session_token="THETOKEN"),
        method="POST",
        url="https://mturk-requester-sandbox.us-east-1.amazonaws.com/?b=2&a=1",
        headers={
            "Content-Type": "application/x-amz-json-1.1",
            "X-Amz-Target": "MTurkRequesterServiceV20170117.ListAssignmentsForHIT",
        },
        body=b"{}",
        region="us-east-1",
        now=datetime(2026, 1, 2, 3, 4, 5, tzinfo=timezone.utc),
    )
    assert (
        signed.signature
        == "4ee709bbb9f1fa3f8675486146c3e5cd07340e21dc76818cab25cc20a1637bc1"
    )
    assert signed.headers["X-Amz-Security-Token"] == "THETOKEN"
    assert "x-amz-security-token" in signed.headers["Authorization"]


def test_authorization_header_structure():
    signed = sign_request(CREDS, **FROZEN_VECTORS[0][0])
    fields = parse_authorization(signed.headers["Authorization"])
    assert fields["Credential"].startswith("AKIDEXAMPLE/20150830/us-east-1/")
    assert "host" in fields["SignedHeaders"].split(";")
    assert fields["Signature"] == signed.signature
    assert signed.headers["X-Amz-Date"] == "20150830T123600Z"


# ----------------------------------------------------------------------
# independent re-derivation (shares nothing with the implementation)
# ----------------------------------------------------------------------
def _independent_sigv4(secret, method, host, body, timestamp, region, service, target):
    """A from-scratch SigV4 for the fixed header set the MTurk backend
    sends — kept deliberately separate from repro.crowd.platforms.signing."""
    payload_hash = hashlib.sha256(body).hexdigest()
    canonical = (
        f"{method}\n/\n\n"
        f"content-type:application/x-amz-json-1.1\n"
        f"host:{host}\n"
        f"x-amz-date:{timestamp}\n"
        f"x-amz-target:{target}\n\n"
        "content-type;host;x-amz-date;x-amz-target\n" + payload_hash
    )
    scope = f"{timestamp[:8]}/{region}/{service}/aws4_request"
    to_sign = (
        "AWS4-HMAC-SHA256\n"
        + timestamp
        + "\n"
        + scope
        + "\n"
        + hashlib.sha256(canonical.encode()).hexdigest()
    )
    key = ("AWS4" + secret).encode()
    for part in (timestamp[:8], region, service, "aws4_request"):
        key = hmac.new(key, part.encode(), hashlib.sha256).digest()
    return hmac.new(key, to_sign.encode(), hashlib.sha256).hexdigest()


@settings(max_examples=60, deadline=None)
@given(
    secret=st.text(
        st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=40
    ),
    body=st.binary(max_size=200),
    region=st.sampled_from(["us-east-1", "eu-central-1", "ap-south-1"]),
    target=st.sampled_from(
        [
            "MTurkRequesterServiceV20170117.CreateHIT",
            "MTurkRequesterServiceV20170117.ApproveAssignment",
        ]
    ),
    epoch=st.integers(min_value=0, max_value=2_000_000_000),
)
def test_signature_matches_independent_reimplementation(
    secret, body, region, target, epoch
):
    creds = Credentials("AKIDEXAMPLE", secret)
    now = datetime.fromtimestamp(epoch, tz=timezone.utc)
    host = "mturk-requester.us-east-1.amazonaws.com"
    signed = sign_request(
        creds,
        method="POST",
        url=f"https://{host}/",
        headers={
            "Content-Type": "application/x-amz-json-1.1",
            "X-Amz-Target": target,
        },
        body=body,
        region=region,
        now=now,
    )
    expected = _independent_sigv4(
        secret,
        "POST",
        host,
        body,
        signed.headers["X-Amz-Date"],
        region,
        "mturk-requester",
        target,
    )
    assert signed.signature == expected


@settings(max_examples=40, deadline=None)
@given(body=st.binary(max_size=120), tamper=st.booleans())
def test_verify_signature_round_trip_and_tamper(body, tamper):
    url = "https://mturk-requester.us-east-1.amazonaws.com/"
    signed = sign_request(
        CREDS,
        method="POST",
        url=url,
        headers={"Content-Type": "application/x-amz-json-1.1"},
        body=body,
        region="us-east-1",
        now=datetime(2024, 6, 1, tzinfo=timezone.utc),
    )
    checked_body = body + b"x" if tamper else body
    ok = verify_signature(
        CREDS,
        method="POST",
        url=url,
        headers=signed.headers,
        body=checked_body,
        region="us-east-1",
    )
    assert ok == (not tamper)


def test_credentials_never_leak_secret_in_repr():
    assert "wJalr" not in repr(CREDS)


def test_credentials_from_env():
    env = {"AWS_ACCESS_KEY_ID": "AK", "AWS_SECRET_ACCESS_KEY": "SK"}
    creds = Credentials.from_env(env)
    assert (creds.access_key, creds.secret_key, creds.session_token) == (
        "AK",
        "SK",
        None,
    )
    with pytest.raises(MissingCredentialsError):
        Credentials.from_env({})
