"""ThrottlePolicy: token-bucket pacing and backoff-retry semantics."""

from __future__ import annotations

import pytest

from repro.crowd.platforms.throttle import RetryBudgetExceededError, ThrottlePolicy


class VirtualClock:
    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, dt: float) -> None:
        self.sleeps.append(dt)
        self.now += dt


def make_policy(clock, **kwargs):
    defaults = dict(rate=2.0, burst=3, max_attempts=4, base_backoff_s=1.0, seed=1)
    defaults.update(kwargs)
    return ThrottlePolicy(clock=clock, sleep=clock.sleep, **defaults)


def test_burst_passes_without_waiting():
    clock = VirtualClock()
    policy = make_policy(clock)
    for _ in range(3):
        policy.acquire()
    assert clock.sleeps == []


def test_acquire_waits_exactly_for_the_next_token():
    clock = VirtualClock()
    policy = make_policy(clock)  # rate=2/s -> a token every 0.5s
    for _ in range(3):
        policy.acquire()
    policy.acquire()
    assert clock.sleeps == [pytest.approx(0.5)]


def test_tokens_refill_while_idle_up_to_burst():
    clock = VirtualClock()
    policy = make_policy(clock)
    for _ in range(3):
        policy.acquire()
    clock.now += 100.0  # long idle refills to burst, not beyond
    for _ in range(3):
        policy.acquire()
    assert len(clock.sleeps) == 0
    policy.acquire()
    assert len(clock.sleeps) == 1


def test_retry_until_success_counts_and_backs_off():
    clock = VirtualClock()
    policy = make_policy(clock)
    responses = iter([{"status": 503}, {"status": 500}, {"status": 200}])
    result = policy.call(
        lambda: next(responses), should_retry=lambda r: r["status"] >= 500
    )
    assert result == {"status": 200}
    assert policy.n_retries == 2
    # backoff before retry 0 is bounded by base, before retry 1 by 2*base
    backoffs = [s for s in clock.sleeps if s > 0]
    assert len(backoffs) == 2
    assert 0.0 <= backoffs[0] <= 1.0
    assert 0.0 <= backoffs[1] <= 2.0


def test_backoff_is_capped_and_deterministic_per_seed():
    clock = VirtualClock()
    policy = make_policy(clock, max_backoff_s=2.5)
    delays = [policy.backoff_s(i) for i in range(6)]
    assert all(0.0 <= d <= 2.5 for d in delays)
    clock2 = VirtualClock()
    policy2 = make_policy(clock2, max_backoff_s=2.5)
    assert delays == [policy2.backoff_s(i) for i in range(6)]


def test_retry_budget_exceeded_raises_with_last_response():
    clock = VirtualClock()
    policy = make_policy(clock, max_attempts=3)
    with pytest.raises(RetryBudgetExceededError, match="3 attempts"):
        policy.call(
            lambda: {"status": 503},
            should_retry=lambda r: True,
            describe="ListAssignmentsForHIT",
        )
    assert policy.n_calls == 3


def test_transport_exceptions_propagate_unretried():
    clock = VirtualClock()
    policy = make_policy(clock)

    def broken():
        raise ConnectionError("wire down")

    with pytest.raises(ConnectionError):
        policy.call(broken, should_retry=lambda r: True)
    assert policy.n_retries == 0


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(rate=0.0),
        dict(burst=0),
        dict(max_attempts=0),
        dict(base_backoff_s=-1.0),
        dict(base_backoff_s=5.0, max_backoff_s=1.0),
    ],
)
def test_invalid_configuration_rejected(kwargs):
    with pytest.raises(ValueError):
        ThrottlePolicy(**kwargs)
