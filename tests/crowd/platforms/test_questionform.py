"""QuestionForm rendering/parsing: well-formed XML, lossless round trips."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pairs import Label, Pair
from repro.crowd.hit import HIT
from repro.crowd.platforms.questionform import (
    ANSWERS_XMLNS,
    HTMLQUESTION_XMLNS,
    QUESTIONFORM_XMLNS,
    SELECTION_MATCHING,
    SELECTION_NON_MATCHING,
    AnswerParseError,
    parse_answer_xml,
    question_identifier,
    render_answer_xml,
    render_html_question,
    render_question_form,
)


def _hit(n_pairs: int = 3) -> HIT:
    return HIT(
        hit_id=7,
        pairs=tuple(Pair(f"a{i}", f"b{i}") for i in range(n_pairs)),
        n_assignments=3,
    )


def test_question_form_is_valid_xml_with_one_question_per_pair():
    hit = _hit(4)
    root = ET.fromstring(render_question_form(hit))
    assert root.tag == f"{{{QUESTIONFORM_XMLNS}}}QuestionForm"
    questions = [c for c in root if c.tag.endswith("Question")]
    assert len(questions) == 4
    ids = [
        child.text
        for q in questions
        for child in q
        if child.tag.endswith("QuestionIdentifier")
    ]
    assert ids == [question_identifier(i) for i in range(4)]


def test_question_form_escapes_markup_in_texts():
    hit = HIT(hit_id=0, pairs=(Pair("<&>", '"quoted"'),), n_assignments=1)
    xml_text = render_question_form(hit, instructions="a < b & c")
    root = ET.fromstring(xml_text)  # would raise on unescaped markup
    texts = [el.text for el in root.iter() if el.tag.endswith("Text")]
    assert any("<&>" in t for t in texts if t)


def test_html_question_embeds_a_form_per_pair():
    hit = _hit(2)
    xml_text = render_html_question(hit, frame_height=450)
    root = ET.fromstring(xml_text)
    assert root.tag == f"{{{HTMLQUESTION_XMLNS}}}HTMLQuestion"
    html = root.find(f"{{{HTMLQUESTION_XMLNS}}}HTMLContent").text
    assert html.count('type="radio"') == 4  # two selections per pair
    assert question_identifier(1) in html
    assert root.find(f"{{{HTMLQUESTION_XMLNS}}}FrameHeight").text == "450"


@settings(max_examples=50, deadline=None)
@given(
    labels=st.lists(
        st.sampled_from([Label.MATCHING, Label.NON_MATCHING]),
        min_size=1,
        max_size=8,
    )
)
def test_answer_round_trip(labels):
    hit = HIT(
        hit_id=1,
        pairs=tuple(Pair(f"x{i}", f"y{i}") for i in range(len(labels))),
        n_assignments=1,
    )
    selections = {
        question_identifier(i): (
            SELECTION_MATCHING if label is Label.MATCHING else SELECTION_NON_MATCHING
        )
        for i, label in enumerate(labels)
    }
    xml_text = render_answer_xml(selections)
    ET.fromstring(xml_text)  # well-formed
    assert ANSWERS_XMLNS in xml_text
    decoded = parse_answer_xml(xml_text, hit)
    assert decoded == {hit.pairs[i]: label for i, label in enumerate(labels)}


def test_parse_rejects_malformed_xml():
    with pytest.raises(AnswerParseError, match="malformed"):
        parse_answer_xml("<not-closed", _hit(1))


def test_parse_rejects_unknown_question():
    xml_text = render_answer_xml({"bogus-3": SELECTION_MATCHING})
    with pytest.raises(AnswerParseError, match="unknown question"):
        parse_answer_xml(xml_text, _hit(1))


def test_parse_rejects_out_of_range_question():
    xml_text = render_answer_xml(
        {
            question_identifier(0): SELECTION_MATCHING,
            question_identifier(5): SELECTION_MATCHING,
        }
    )
    with pytest.raises(AnswerParseError, match="does not address"):
        parse_answer_xml(xml_text, _hit(1))


def test_parse_rejects_unknown_selection():
    xml_text = render_answer_xml({question_identifier(0): "maybe"})
    with pytest.raises(AnswerParseError, match="unknown selection"):
        parse_answer_xml(xml_text, _hit(1))


def test_parse_requires_full_coverage():
    hit = _hit(2)
    xml_text = render_answer_xml({question_identifier(0): SELECTION_MATCHING})
    with pytest.raises(AnswerParseError, match="missing"):
        parse_answer_xml(xml_text, hit)


def test_custom_describe_controls_worker_facing_text():
    records = {"a0": "Paper about joins", "b0": "A paper on joins"}
    hit = HIT(hit_id=0, pairs=(Pair("a0", "b0"),), n_assignments=1)
    xml_text = render_question_form(
        hit, describe=lambda pair: (records[pair.left], records[pair.right])
    )
    assert "Paper about joins" in xml_text
    assert "a0" not in xml_text.replace("pair-0", "")
