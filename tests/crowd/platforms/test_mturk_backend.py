"""MTurkBackend against the wire-level fake service, end to end.

Every test here exercises the *real* production code path — SigV4 signing
(verified server-side), QuestionForm rendering and parsing, JSON RPC,
pagination — with only the HTTP socket replaced by the in-process fake.
"""

from __future__ import annotations

import pytest

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.crowd import ApproveAll, ManualClock, PollingPlatformClient
from repro.crowd.platforms import (
    Credentials,
    FakeMTurkService,
    MTurkBackend,
    MTurkRequestError,
    ThrottlePolicy,
)
from repro.crowd.review import ReviewDecision
from repro.engine import CrowdRuntime, LabelingEngine, RuntimeMode
from repro.crowd.latency import TimeoutPolicy
from tests.aio import run_async

CREDS = Credentials("AKIDEXAMPLE", "topsecretsecret")

ENTITY_OF = {f"r{i}": i % 3 for i in range(9)}
TRUTH = GroundTruthOracle(ENTITY_OF)


def answer(left: str, right: str) -> Label:
    return TRUTH.label(Pair(left, right))


def make_stack(*, latency=None, drop=(), page_size=10, n_assignments=3, **service_kwargs):
    clock = ManualClock(start=1_700_000_000.0)
    service = FakeMTurkService(
        answer,
        credentials=CREDS,
        clock=clock.now,
        latency=latency,
        drop_hit_indexes=drop,
        seed=5,
        **service_kwargs,
    )
    backend = MTurkBackend(
        CREDS,
        transport=service.transport,
        clock=clock.now,
        throttle=ThrottlePolicy(
            rate=1e6, burst=1000, clock=clock.now, sleep=lambda s: None, seed=5
        ),
        page_size=page_size,
    )
    return clock, service, backend


def request_for(pairs, hit_id=0, n_assignments=3):
    return {"hit_id": hit_id, "pairs": tuple(pairs), "n_assignments": n_assignments}


def test_create_then_fetch_aggregates_majority_labels():
    clock, service, backend = make_stack()
    pairs = [Pair("r0", "r3"), Pair("r0", "r1")]
    backend.create_hits([request_for(pairs)])
    records = backend.fetch_completed()
    assert len(records) == 1
    record = records[0]
    assert record["hit_id"] == 0
    assert record["labels"] == {
        Pair("r0", "r3"): Label.MATCHING,
        Pair("r0", "r1"): Label.NON_MATCHING,
    }
    assert len(record["assignment_ids"]) == 3
    # settled HITs are not re-fetched
    assert backend.fetch_completed() == []


def test_incomplete_replication_is_not_delivered():
    clock, service, backend = make_stack(latency=lambda rng: rng.uniform(10.0, 50.0))
    backend.create_hits([request_for([Pair("r0", "r3")])])
    assert backend.fetch_completed() == []  # nothing submitted yet
    clock.advance(100.0)
    assert len(backend.fetch_completed()) == 1


def test_assignment_listing_paginates():
    clock, service, backend = make_stack(page_size=2, n_assignments=3)
    backend.create_hits([request_for([Pair("r0", "r3")], n_assignments=5)])
    records = backend.fetch_completed()
    assert len(records) == 1
    assert len(records[0]["assignment_ids"]) == 5
    # 5 assignments at MaxResults=2 -> 3 pages for the single fetch pass
    assert service.n_operations("ListAssignmentsForHIT") == 3


def test_signature_rejection_is_a_hard_error():
    clock, service, _ = make_stack()
    impostor = MTurkBackend(
        Credentials("AKIDEXAMPLE", "the-wrong-secret"),
        transport=service.transport,
        clock=clock.now,
        throttle=ThrottlePolicy(clock=clock.now, sleep=lambda s: None),
    )
    with pytest.raises(MTurkRequestError) as err:
        impostor.create_hits([request_for([Pair("r0", "r1")])])
    assert err.value.status == 403
    assert "InvalidSignature" in err.value.code


def test_throttling_responses_are_retried_transparently():
    clock, service, backend = make_stack()
    service.inject.append(
        {"status": 400, "body": '{"__type": "ThrottlingException", "Message": "slow down"}'}
    )
    service.inject.append({"status": 503, "body": ""})
    backend.create_hits([request_for([Pair("r0", "r3")])])
    assert backend.throttle.n_retries == 2
    assert len(backend.fetch_completed()) == 1


def test_non_retryable_error_raises_with_code_and_message():
    clock, service, backend = make_stack()
    service.inject.append(
        {"status": 400, "body": '{"__type": "RequestError", "Message": "no such thing"}'}
    )
    with pytest.raises(MTurkRequestError, match="RequestError.*no such thing"):
        backend.create_hits([request_for([Pair("r0", "r1")])])


def test_expire_hit_hides_future_assignments():
    clock, service, backend = make_stack(latency=lambda rng: 50.0)
    backend.create_hits([request_for([Pair("r0", "r3")])])
    assert backend.expire_hit(0) is True
    assert backend.expire_hit(0) is False  # already settled
    clock.advance(200.0)
    assert backend.fetch_completed() == []  # expired before submission


def test_extend_expiry_keeps_hit_alive_on_platform():
    clock, service, backend = make_stack(latency=lambda rng: 50.0)
    backend.create_hits([request_for([Pair("r0", "r3")])])
    assert backend.extend_expiry(0, 10_000.0) is True
    assert service.n_operations("UpdateExpirationForHIT") == 1
    clock.advance(100.0)
    assert len(backend.fetch_completed()) == 1
    with pytest.raises(ValueError):
        backend.extend_expiry(0, 0.0)
    assert backend.extend_expiry(99, 100.0) is False


def test_review_fans_out_and_counts():
    clock, service, backend = make_stack()
    backend.create_hits([request_for([Pair("r0", "r3")])])
    record = backend.fetch_completed()[0]
    reject_id = record["assignment_ids"][0]
    approved, rejected = backend.review_assignments(
        0,
        [
            ReviewDecision(assignment_id=reject_id, approve=False, feedback="bad"),
            ReviewDecision(assignment_id=record["assignment_ids"][1], approve=True),
            ReviewDecision(assignment_id=record["assignment_ids"][2], approve=True),
        ],
    )
    assert (approved, rejected) == (2, 1)
    statuses = service.assignment_statuses()
    assert statuses[reject_id] == "Rejected"
    assert sorted(statuses.values()) == ["Approved", "Approved", "Rejected"]


def test_double_review_is_a_platform_error():
    clock, service, backend = make_stack()
    backend.create_hits([request_for([Pair("r0", "r3")])])
    backend.fetch_completed()
    backend.review_assignments(0, [ReviewDecision(approve=True)])
    with pytest.raises(MTurkRequestError, match="already Approved"):
        backend.review_assignments(0, [ReviewDecision(approve=False)])


def test_full_campaign_over_polling_client_with_review():
    """The acceptance shape: engine + runtime + polling client + MTurk wire."""
    clock, service, backend = make_stack(
        latency=lambda rng: rng.uniform(10.0, 120.0), drop={1}
    )
    pairs = [
        Pair(a, b)
        for i, a in enumerate(sorted(ENTITY_OF))
        for b in sorted(ENTITY_OF)[i + 1 :]
    ]
    client = PollingPlatformClient(
        backend,
        batch_size=4,
        n_assignments=3,
        poll_interval=15.0,
        clock=clock.now,
        sleep=clock.sleep,
    )
    engine = LabelingEngine(pairs)
    runtime = CrowdRuntime(
        engine,
        client,
        mode=RuntimeMode.HIT_INSTANT,
        timeout=TimeoutPolicy(hit_timeout=600.0, max_reissues=3),
        review=ApproveAll(feedback="thanks"),
    )
    report = run_async(runtime.run())
    result = engine.result
    assert result.n_pairs == len(pairs)
    assert all(result.label_of(p) is TRUTH.label(p) for p in pairs)
    assert report.n_expired_hits >= 1  # the dropped HIT timed out
    assert report.n_reissued_hits >= 1
    assert report.n_assignments_approved == report.n_completions * 3
    assert report.n_assignments_rejected == 0
    # every submitted-and-fetched assignment got paid (the dropped HIT
    # produced no assignments at all, so nothing is left Submitted)
    statuses = service.assignment_statuses()
    assert set(statuses.values()) == {"Approved"}
    assert len(statuses) == report.n_assignments_approved


def test_create_hit_retry_is_idempotent_when_response_is_lost():
    """A CreateHIT that took effect server-side but whose response was
    lost (5xx) must not double-publish on retry: the UniqueRequestToken
    makes the re-sent request return the original HIT."""
    clock, service, backend = make_stack()
    service.lose_response.append({"status": 502, "body": ""})
    backend.create_hits([request_for([Pair("r0", "r3")])])
    assert backend.throttle.n_retries == 1
    assert service._n_hits == 1  # no orphaned duplicate HIT
    assert len(backend.fetch_completed()) == 1


def test_leftover_completions_are_still_reviewed():
    """Completions that arrive after the campaign is decided (drained as
    leftovers) still pass through the review policy — the workers did the
    work and must be paid."""
    clock, service, backend = make_stack()
    pairs = [Pair("r0", "r3"), Pair("r0", "r1")]
    client = PollingPlatformClient(
        backend,
        batch_size=1,
        n_assignments=3,
        poll_interval=5.0,
        clock=clock.now,
        sleep=clock.sleep,
    )
    engine = LabelingEngine(pairs)
    runtime = CrowdRuntime(
        engine, client, mode=RuntimeMode.FLOOD, review=ApproveAll()
    )
    # Both HITs complete instantly (zero latency): the first next_event
    # poll buffers both completions, FLOOD applies them one at a time, and
    # the campaign is decided with one completion still buffered -> it is
    # drained as a leftover rather than applied.
    report = run_async(runtime.run())
    assert report.n_completions + len(report.leftovers) == 2
    assert report.n_assignments_approved == 2 * 3
    assert set(service.assignment_statuses().values()) == {"Approved"}
