"""The record/replay cassette layer.

Three contracts: (1) a recorded campaign replays to *identical* labeling
results with no backend behind it, (2) any divergence from the recording
fails loudly with a readable diff, (3) payload serialisation round-trips
the backend seam's value types exactly.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.crowd import InMemoryCrowdBackend, ManualClock, PollingPlatformClient
from repro.crowd.platforms.cassette import (
    Cassette,
    RecordReplayBackend,
    ReplayDivergenceError,
    decode_payload,
    encode_payload,
)
from repro.crowd.review import ReviewDecision
from repro.engine import CrowdRuntime, LabelingEngine, RuntimeMode
from repro.crowd.latency import TimeoutPolicy
from tests.aio import run_async

ENTITY_OF = {i: i % 3 for i in range(10)}
TRUTH = GroundTruthOracle(ENTITY_OF)
PAIRS = [Pair(a, b) for a in range(10) for b in range(a + 1, 10) if (a + b) % 2]


def run_campaign(backend, clock):
    client = PollingPlatformClient(
        backend,
        batch_size=4,
        n_assignments=1,
        poll_interval=5.0,
        clock=clock.now,
        sleep=clock.sleep,
    )
    engine = LabelingEngine(list(PAIRS))
    runtime = CrowdRuntime(
        engine,
        client,
        mode=RuntimeMode.HIT_INSTANT,
        timeout=TimeoutPolicy(hit_timeout=120.0, max_reissues=3),
    )
    report = run_async(runtime.run())
    return engine, report


def record_reference(tmp_path):
    clock = ManualClock()
    inner = InMemoryCrowdBackend(
        oracle=TRUTH,
        clock=clock.now,
        latency=lambda rng: rng.uniform(1.0, 30.0),
        drop_hit_ids={1},
        seed=3,
    )
    recorder = RecordReplayBackend("record", inner=inner, meta={"seed": 3})
    engine, report = run_campaign(recorder, clock)
    path = tmp_path / "campaign.json"
    recorder.save(path)
    return engine, report, path


# ----------------------------------------------------------------------
# round-trip equality
# ----------------------------------------------------------------------
def test_record_replay_round_trip_equality(tmp_path):
    engine, report, path = record_reference(tmp_path)

    clock = ManualClock()
    replayer = RecordReplayBackend("replay", cassette=Cassette.load(path))
    replay_engine, replay_report = run_campaign(replayer, clock)
    replayer.assert_exhausted()

    assert [replay_engine.result.label_of(p) for p in PAIRS] == [
        engine.result.label_of(p) for p in PAIRS
    ]
    assert replay_engine.result.n_crowdsourced == engine.result.n_crowdsourced
    assert replay_report.n_completions == report.n_completions
    assert replay_report.n_expired_hits == report.n_expired_hits
    assert replay_report.hit_batches == report.hit_batches
    assert replay_report.completion_hours == report.completion_hours


def test_cassette_file_is_reviewable_json(tmp_path):
    _, _, path = record_reference(tmp_path)
    data = json.loads(path.read_text())
    assert data["format"] == "repro-cassette/1"
    assert data["meta"] == {"seed": 3}
    methods = {i["method"] for i in data["interactions"]}
    assert {"create_hits", "fetch_completed", "expire_hit"} <= methods
    assert [i["seq"] for i in data["interactions"]] == list(
        range(len(data["interactions"]))
    )


# ----------------------------------------------------------------------
# divergence
# ----------------------------------------------------------------------
def test_replay_divergence_raises_with_readable_diff(tmp_path):
    _, _, path = record_reference(tmp_path)
    replayer = RecordReplayBackend("replay", cassette=Cassette.load(path))
    # The recording starts with create_hits for specific pairs; ask for a
    # different pair composition.
    with pytest.raises(ReplayDivergenceError) as err:
        replayer.create_hits(
            [{"hit_id": 0, "pairs": (Pair(97, 99),), "n_assignments": 1}]
        )
    message = str(err.value)
    assert "diverged at interaction 0" in message
    assert "--- cassette interaction 0 (recorded)" in message
    assert "+++ campaign call (actual)" in message
    assert "97" in message  # the actual request is in the diff
    assert "Re-record the cassette" in message


def test_replay_method_mismatch_diverges(tmp_path):
    _, _, path = record_reference(tmp_path)
    replayer = RecordReplayBackend("replay", cassette=Cassette.load(path))
    with pytest.raises(ReplayDivergenceError, match="diverged at interaction 0"):
        replayer.fetch_completed()


def test_replay_exhaustion_diverges(tmp_path):
    _, _, path = record_reference(tmp_path)
    cassette = Cassette.load(path)
    short = Cassette(interactions=cassette.interactions[:1], meta=cassette.meta)
    replayer = RecordReplayBackend("replay", cassette=short)
    first = cassette.interactions[0]
    assert first["method"] == "create_hits"
    replayer.create_hits(decode_payload(first["request"])[0])
    with pytest.raises(ReplayDivergenceError, match="cassette exhausted"):
        replayer.fetch_completed()


def test_assert_exhausted_flags_unplayed_interactions(tmp_path):
    _, _, path = record_reference(tmp_path)
    replayer = RecordReplayBackend("replay", cassette=Cassette.load(path))
    with pytest.raises(ReplayDivergenceError, match="unplayed"):
        replayer.assert_exhausted()


# ----------------------------------------------------------------------
# construction + file format errors
# ----------------------------------------------------------------------
def test_constructor_validation():
    with pytest.raises(ValueError, match="record.*or.*replay"):
        RecordReplayBackend("observe")
    with pytest.raises(ValueError, match="inner backend"):
        RecordReplayBackend("record")
    with pytest.raises(ValueError, match="cassette"):
        RecordReplayBackend("replay")
    with pytest.raises(RuntimeError, match="record mode"):
        RecordReplayBackend(
            "replay", cassette=Cassette()
        ).save("/tmp/nope.json")


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "not_a_cassette.json"
    path.write_text('{"hello": "world"}')
    with pytest.raises(ValueError, match="not a repro-cassette/1"):
        Cassette.load(path)


# ----------------------------------------------------------------------
# payload serialisation
# ----------------------------------------------------------------------
scalars = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.text(max_size=12),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


def pair_values(draw_scalars=scalars):
    return st.builds(
        lambda a, b: Pair(a, b),
        st.integers(0, 1000),
        st.integers(1001, 2000),
    )


payloads = st.recursive(
    st.one_of(
        scalars,
        st.none(),
        pair_values(),
        st.sampled_from([Label.MATCHING, Label.NON_MATCHING]),
        st.builds(ReviewDecision, st.none() | st.text(max_size=6), st.booleans(), st.text(max_size=6)),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
        st.dictionaries(pair_values(), children, max_size=4),
    ),
    max_leaves=12,
)


@settings(max_examples=80, deadline=None)
@given(payload=payloads)
def test_payload_round_trip(payload):
    encoded = encode_payload(payload)
    json.dumps(encoded)  # must be JSON-representable
    assert decode_payload(json.loads(json.dumps(encoded))) == payload


def test_tuples_decode_as_lists():
    # JSON has no tuple; the seam's consumers only iterate, so lists are
    # the documented round-trip for tuple payloads.
    assert decode_payload(encode_payload((1, 2))) == [1, 2]


def test_unserialisable_payload_is_a_type_error():
    with pytest.raises(TypeError, match="cannot record"):
        encode_payload(object())


def test_record_mode_degrades_optional_extensions_gracefully(tmp_path):
    """Recording over a backend without review/extend support records the
    no-op outcome instead of crashing, so replay stays faithful."""
    clock = ManualClock()
    inner = InMemoryCrowdBackend(oracle=TRUTH, clock=clock.now, seed=1)
    recorder = RecordReplayBackend("record", inner=inner)
    assert recorder.review_assignments(0, [ReviewDecision(approve=True)]) == (0, 0)
    assert recorder.extend_expiry(0, 100.0) is False
    replayer = RecordReplayBackend("replay", cassette=recorder.cassette)
    assert replayer.review_assignments(0, [ReviewDecision(approve=True)]) == (0, 0)
    assert replayer.extend_expiry(0, 100.0) is False
    replayer.assert_exhausted()
