"""Tests for the campaign runners against the simulated platform."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import CandidatePair, Label, Pair
from repro.core.sequential import label_sequential
from repro.crowd.campaign import run_non_parallel, run_non_transitive, run_transitive
from repro.crowd.latency import FixedLatency
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.worker import make_worker_pool

from ..conftest import FIGURE3_ENTITIES, FIGURE3_PAIRS
from ..strategies import worlds


def make_platform(truth, batch_size=3, seed=0, workers=None):
    return SimulatedPlatform(
        workers=workers or make_worker_pool(6, seed=seed),
        truth=truth,
        latency=FixedLatency(),
        batch_size=batch_size,
        n_assignments=3,
        seed=seed,
    )


@pytest.fixture
def figure3_order():
    return [FIGURE3_PAIRS[f"p{i}"] for i in range(1, 9)]


@pytest.fixture
def truth():
    return GroundTruthOracle(FIGURE3_ENTITIES)


class TestNonTransitive:
    def test_crowdsources_every_pair(self, figure3_order, truth):
        report = run_non_transitive(figure3_order, make_platform(truth))
        assert report.n_crowdsourced == 8
        assert report.n_deduced == 0

    def test_labels_correct_with_perfect_workers(self, figure3_order, truth):
        report = run_non_transitive(figure3_order, make_platform(truth))
        for pair in figure3_order:
            assert report.labels[pair] is truth.label(pair)

    def test_hit_count(self, figure3_order, truth):
        report = run_non_transitive(figure3_order, make_platform(truth, batch_size=3))
        assert report.n_hits == 3  # ceil(8 / 3)
        assert report.n_assignments == 9

    def test_single_publish_event(self, figure3_order, truth):
        report = run_non_transitive(figure3_order, make_platform(truth))
        assert len(report.publish_events) == 1


class TestTransitive:
    def test_crowdsources_six_on_figure3(self, figure3_order, truth):
        report = run_transitive(figure3_order, make_platform(truth))
        assert report.n_crowdsourced == 6
        assert report.n_deduced == 2

    def test_labels_correct_with_perfect_workers(self, figure3_order, truth):
        report = run_transitive(figure3_order, make_platform(truth))
        for pair in figure3_order:
            assert report.labels[pair] is truth.label(pair)

    def test_fewer_hits_than_non_transitive(self, figure3_order, truth):
        transitive = run_transitive(figure3_order, make_platform(truth, seed=1))
        baseline = run_non_transitive(figure3_order, make_platform(truth, seed=1))
        assert transitive.n_hits <= baseline.n_hits
        assert transitive.cost <= baseline.cost

    def test_full_hits_preferred(self, truth):
        """Buffering packs publishable pairs into full HITs.

        Round one must crowdsource {p1, p2, p3, p5, p6}: one full HIT of 3
        plus a forced partial of 2 (the platform would otherwise idle); p7 is
        only identifiable after round one and needs a third HIT.  Without
        buffering, naive per-burst batching could not do better either, but
        the first HIT must be full."""
        order = [FIGURE3_PAIRS[f"p{i}"] for i in range(1, 9)]
        report = run_transitive(order, make_platform(truth, batch_size=3))
        assert report.n_hits == 3
        assert len(report.hit_batches[0]) == 3

    def test_hit_batches_cover_crowdsourced_pairs(self, figure3_order, truth):
        report = run_transitive(figure3_order, make_platform(truth))
        published = [pair for batch in report.hit_batches for pair in batch]
        crowdsourced = {
            pair
            for pair, provenance in report.provenance.items()
            if provenance.value == "crowdsourced"
        }
        assert set(published) == crowdsourced
        assert len(published) == len(crowdsourced)

    @given(worlds(max_objects=8, max_pairs=14))
    @settings(max_examples=25, deadline=None)
    def test_perfect_workers_match_sequential_labels(self, world):
        candidates, entity_of = world
        if not candidates:
            return
        truth = GroundTruthOracle(entity_of)
        report = run_transitive(
            [c.pair for c in candidates], make_platform(truth, batch_size=2, seed=3)
        )
        sequential = label_sequential(candidates, truth)
        assert report.labels == sequential.labels()

    @given(worlds(max_objects=8, max_pairs=14))
    @settings(max_examples=25, deadline=None)
    def test_crowdsourced_never_exceeds_sequential(self, world):
        candidates, entity_of = world
        if not candidates:
            return
        truth = GroundTruthOracle(entity_of)
        report = run_transitive(
            [c.pair for c in candidates], make_platform(truth, batch_size=2, seed=4)
        )
        sequential = label_sequential(candidates, truth)
        assert report.n_crowdsourced <= sequential.n_crowdsourced

    def test_round_based_mode(self, figure3_order, truth):
        report = run_transitive(
            figure3_order, make_platform(truth), instant_decision=False
        )
        assert report.n_crowdsourced == 6
        for pair in figure3_order:
            assert report.labels[pair] is truth.label(pair)


class TestNonParallel:
    def test_replays_hits_serially(self, figure3_order, truth):
        chunks = [figure3_order[:3], figure3_order[3:6], figure3_order[6:]]
        report = run_non_parallel(chunks, make_platform(truth))
        assert report.n_hits == 3
        assert len(report.publish_events) == 3
        for pair in figure3_order:
            assert report.labels[pair] is truth.label(pair)

    def test_slower_than_parallel_publication(self, figure3_order, truth):
        chunks = [figure3_order[:3], figure3_order[3:6], figure3_order[6:]]
        serial = run_non_parallel(chunks, make_platform(truth, seed=5))
        together = run_non_transitive(figure3_order, make_platform(truth, seed=5))
        assert serial.completion_hours > together.completion_hours

    def test_same_hits_same_cost(self, figure3_order, truth):
        """Table 1's invariant: replaying identical HITs costs the same."""
        transitive = run_transitive(figure3_order, make_platform(truth, seed=6))
        replay = run_non_parallel(transitive.hit_batches, make_platform(truth, seed=7))
        assert replay.n_hits == transitive.n_hits
        assert replay.cost == pytest.approx(transitive.cost)
