"""Tests for the discrete-event platform simulator."""

from __future__ import annotations

import pytest

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.crowd.budget import CostModel
from repro.crowd.latency import FixedLatency, ZeroLatency
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.worker import make_worker_pool


@pytest.fixture
def truth():
    return GroundTruthOracle({"a": 1, "b": 1, "c": 2, "d": 2, "e": 3})


def make_platform(truth, n_workers=6, batch_size=2, n_assignments=3, latency=None, seed=0):
    return SimulatedPlatform(
        workers=make_worker_pool(n_workers, seed=seed),
        truth=truth,
        latency=latency or FixedLatency(),
        batch_size=batch_size,
        n_assignments=n_assignments,
        seed=seed,
    )


class TestPublication:
    def test_batches_into_hits(self, truth):
        platform = make_platform(truth, batch_size=2)
        hits = platform.publish_pairs([Pair("a", "b"), Pair("a", "c"), Pair("c", "d")])
        assert [len(h) for h in hits] == [2, 1]
        assert platform.stats.hits_published == 2
        assert platform.n_outstanding_hits == 2

    def test_requires_enough_workers(self, truth):
        with pytest.raises(ValueError):
            SimulatedPlatform(
                workers=make_worker_pool(2, seed=0), truth=truth, n_assignments=3
            )

    def test_hit_ids_unique_across_bursts(self, truth):
        platform = make_platform(truth, batch_size=1)
        first = platform.publish_pairs([Pair("a", "b"), Pair("a", "c")])
        second = platform.publish_pairs([Pair("c", "d")])
        ids = [h.hit_id for h in first + second]
        assert len(set(ids)) == len(ids)


class TestStepping:
    def test_step_returns_completions_in_time_order(self, truth):
        platform = make_platform(truth, batch_size=1)
        platform.publish_pairs([Pair("a", "b"), Pair("a", "c"), Pair("c", "d")])
        times = []
        while (completion := platform.step()) is not None:
            times.append(completion.completed_at)
        assert len(times) == 3
        assert times == sorted(times)

    def test_perfect_workers_yield_true_labels(self, truth):
        platform = make_platform(truth, batch_size=2)
        platform.publish_pairs([Pair("a", "b"), Pair("a", "c"), Pair("c", "d")])
        labels = {}
        for completion in platform.run_to_completion():
            labels.update(completion.labels)
        assert labels[Pair("a", "b")] is Label.MATCHING
        assert labels[Pair("a", "c")] is Label.NON_MATCHING
        assert labels[Pair("c", "d")] is Label.MATCHING

    def test_step_on_idle_platform_returns_none(self, truth):
        platform = make_platform(truth)
        assert platform.step() is None

    def test_outstanding_count_drains(self, truth):
        platform = make_platform(truth, batch_size=1)
        platform.publish_pairs([Pair("a", "b"), Pair("a", "c")])
        assert platform.n_outstanding_hits == 2
        platform.step()
        assert platform.n_outstanding_hits == 1
        platform.step()
        assert platform.n_outstanding_hits == 0

    def test_distinct_workers_per_hit(self, truth):
        platform = make_platform(truth, batch_size=1, n_assignments=3)
        platform.publish_pairs([Pair("a", "b")])
        completion = platform.step()
        workers = {a.worker_id for a in completion.assignments}
        assert len(workers) == 3

    def test_mid_run_publication(self, truth):
        """Pairs published while the simulation runs complete later."""
        platform = make_platform(truth, batch_size=1)
        platform.publish_pairs([Pair("a", "b")])
        first = platform.step()
        platform.publish_pairs([Pair("c", "d")])
        second = platform.step()
        assert second is not None
        assert second.completed_at >= first.completed_at


class TestTimingAndCost:
    def test_time_advances_monotonically(self, truth):
        platform = make_platform(truth, batch_size=1)
        platform.publish_pairs([Pair("a", "b"), Pair("a", "c")])
        t0 = platform.now
        platform.step()
        t1 = platform.now
        platform.step()
        assert t0 <= t1 <= platform.now

    def test_zero_latency_completes_at_time_zero(self, truth):
        platform = make_platform(truth, latency=ZeroLatency())
        platform.publish_pairs([Pair("a", "b")])
        completion = platform.step()
        assert completion.completed_at == 0.0

    def test_cost_accounting(self, truth):
        platform = SimulatedPlatform(
            workers=make_worker_pool(6, seed=0),
            truth=truth,
            latency=FixedLatency(),
            batch_size=2,
            n_assignments=3,
            cost_model=CostModel(price_per_assignment=0.02),
        )
        platform.publish_pairs([Pair("a", "b"), Pair("a", "c"), Pair("c", "d")])
        platform.run_to_completion()
        # 2 HITs * 3 assignments * $0.02
        assert platform.ledger.total == pytest.approx(0.12)
        assert platform.stats.assignments_completed == 6

    def test_serial_publication_is_slower_than_parallel(self, truth):
        pairs = [Pair("a", "b"), Pair("a", "c"), Pair("c", "d"), Pair("d", "e")]
        parallel = make_platform(truth, batch_size=1, seed=3)
        parallel.publish_pairs(pairs)
        parallel_time = parallel.run_to_completion()[-1].completed_at

        serial = make_platform(truth, batch_size=1, seed=3)
        last = 0.0
        for pair in pairs:
            serial.publish_pairs([pair])
            last = serial.step().completed_at
        assert last > parallel_time

    def test_deterministic_given_seed(self, truth):
        def run(seed):
            platform = make_platform(truth, batch_size=1, seed=seed)
            platform.publish_pairs([Pair("a", "b"), Pair("a", "c")])
            return [c.completed_at for c in platform.run_to_completion()]

        assert run(5) == run(5)
        assert run(5) != run(6)
