"""Tests for the latency models and cost accounting."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crowd.budget import CostLedger, CostModel
from repro.crowd.latency import FixedLatency, LognormalLatency, ZeroLatency


class TestLognormalLatency:
    def test_pickup_mean_is_calibrated(self):
        model = LognormalLatency(mean_pickup_hours=0.5, pickup_sigma=0.8)
        rng = random.Random(1)
        samples = [model.pickup_delay(rng) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(0.5, rel=0.1)

    def test_pickup_is_positive(self):
        model = LognormalLatency()
        rng = random.Random(2)
        assert all(model.pickup_delay(rng) > 0 for _ in range(100))

    def test_work_time_scales_with_pairs(self):
        model = LognormalLatency(seconds_per_pair=36.0)
        rng = random.Random(3)
        one = sum(model.work_time(rng, 1) for _ in range(500)) / 500
        twenty = sum(model.work_time(rng, 20) for _ in range(500)) / 500
        assert twenty == pytest.approx(20 * one, rel=0.15)
        # 36 s/pair = 0.01 h/pair on average
        assert one == pytest.approx(0.01, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalLatency(mean_pickup_hours=0.0)
        with pytest.raises(ValueError):
            LognormalLatency(seconds_per_pair=-1.0)


class TestFixedAndZeroLatency:
    def test_fixed_is_deterministic(self):
        model = FixedLatency(pickup_hours=0.2, work_hours_per_pair=0.01)
        rng = random.Random(0)
        assert model.pickup_delay(rng) == 0.2
        assert model.work_time(rng, 10) == pytest.approx(0.1)

    def test_zero_latency(self):
        model = ZeroLatency()
        rng = random.Random(0)
        assert model.pickup_delay(rng) == 0.0
        assert model.work_time(rng, 100) == 0.0


class TestCostModel:
    def test_paper_pricing(self):
        """Table 2(a): 1,465 HITs x 3 assignments x $0.02 = $87.90."""
        model = CostModel(price_per_assignment=0.02)
        assert model.hit_cost(1_465, 3) == pytest.approx(87.90)

    def test_assignment_cost(self):
        model = CostModel(price_per_assignment=0.05)
        assert model.assignment_cost(10) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(price_per_assignment=-0.01)
        with pytest.raises(ValueError):
            CostModel().assignment_cost(-1)

    @given(st.integers(0, 10_000), st.integers(1, 10))
    def test_hit_cost_formula(self, n_hits, replication):
        model = CostModel(price_per_assignment=0.02)
        assert model.hit_cost(n_hits, replication) == pytest.approx(
            n_hits * replication * 0.02
        )


class TestCostLedger:
    def test_running_total(self):
        ledger = CostLedger(CostModel(price_per_assignment=0.02))
        for _ in range(5):
            ledger.charge_assignment()
        assert ledger.assignments_paid == 5
        assert ledger.total == pytest.approx(0.10)

    def test_charge_returns_unit_price(self):
        ledger = CostLedger(CostModel(price_per_assignment=0.03))
        assert ledger.charge_assignment() == pytest.approx(0.03)
