"""Tests for HITs, assignments, and batching."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pairs import Label, Pair
from repro.crowd.hit import (
    HIT,
    Assignment,
    batch_pairs,
    n_hits_needed,
    pairs_of_hits,
)


def make_pairs(n):
    return [Pair(f"a{i}", f"b{i}") for i in range(n)]


class TestHIT:
    def test_requires_pairs(self):
        with pytest.raises(ValueError):
            HIT(hit_id=0, pairs=())

    def test_requires_assignments(self):
        with pytest.raises(ValueError):
            HIT(hit_id=0, pairs=tuple(make_pairs(1)), n_assignments=0)

    def test_rejects_duplicate_pairs(self):
        pair = Pair("a", "b")
        with pytest.raises(ValueError):
            HIT(hit_id=0, pairs=(pair, pair))

    def test_len_and_iter(self):
        pairs = tuple(make_pairs(3))
        hit = HIT(hit_id=0, pairs=pairs)
        assert len(hit) == 3
        assert list(hit) == list(pairs)


class TestAssignment:
    def test_requires_answer_for_every_pair(self):
        pairs = tuple(make_pairs(2))
        hit = HIT(hit_id=0, pairs=pairs)
        with pytest.raises(ValueError):
            Assignment(hit=hit, worker_id=1, answers={pairs[0]: Label.MATCHING})

    def test_duration(self):
        pairs = tuple(make_pairs(1))
        hit = HIT(hit_id=0, pairs=pairs)
        assignment = Assignment(
            hit=hit,
            worker_id=1,
            answers={pairs[0]: Label.MATCHING},
            accepted_at=1.0,
            submitted_at=3.5,
        )
        assert assignment.duration == pytest.approx(2.5)


class TestBatching:
    def test_batches_preserve_order(self):
        pairs = make_pairs(45)
        hits = batch_pairs(pairs, batch_size=20)
        assert [len(h) for h in hits] == [20, 20, 5]
        assert pairs_of_hits(hits) == pairs

    def test_hit_ids_are_sequential(self):
        hits = batch_pairs(make_pairs(45), batch_size=20, first_hit_id=7)
        assert [h.hit_id for h in hits] == [7, 8, 9]

    def test_single_partial_batch(self):
        hits = batch_pairs(make_pairs(3), batch_size=20)
        assert len(hits) == 1
        assert len(hits[0]) == 3

    def test_empty_input(self):
        assert batch_pairs([], batch_size=20) == []

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            batch_pairs(make_pairs(3), batch_size=0)

    @given(st.integers(0, 500), st.integers(1, 50))
    def test_batch_count_matches_formula(self, n_pairs, batch_size):
        hits = batch_pairs(make_pairs(n_pairs), batch_size=batch_size)
        assert len(hits) == n_hits_needed(n_pairs, batch_size)

    def test_paper_hit_arithmetic(self):
        """Table 2(a): 29,281 pairs at 20 per HIT -> 1,465 HITs."""
        assert n_hits_needed(29_281, 20) == 1_465
        assert n_hits_needed(3_154, 20) == 158
