"""Tests for worker behaviour models and qualification tests."""

from __future__ import annotations

import pytest

from repro.core.pairs import Label, Pair
from repro.crowd.worker import (
    AmbiguityAwareWorker,
    BernoulliWorker,
    PerfectWorker,
    QualificationTest,
    Worker,
    make_worker_pool,
)

PAIR = Pair("a", "b")


class TestPerfectWorker:
    def test_always_correct(self):
        worker = PerfectWorker()
        for label in Label:
            assert worker.answer(PAIR, label, 0.5) is label


class TestBernoulliWorker:
    def test_accuracy_one_is_perfect(self):
        worker = BernoulliWorker(accuracy=1.0, seed=1)
        assert all(
            worker.answer(PAIR, Label.MATCHING, 0.5) is Label.MATCHING
            for _ in range(50)
        )

    def test_accuracy_zero_always_flips(self):
        worker = BernoulliWorker(accuracy=0.0, seed=1)
        assert all(
            worker.answer(PAIR, Label.MATCHING, 0.5) is Label.NON_MATCHING
            for _ in range(50)
        )

    def test_intermediate_accuracy_is_roughly_calibrated(self):
        worker = BernoulliWorker(accuracy=0.8, seed=3)
        answers = [worker.answer(PAIR, Label.MATCHING, 0.5) for _ in range(2000)]
        correct = sum(1 for a in answers if a is Label.MATCHING)
        assert 0.75 < correct / len(answers) < 0.85

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ValueError):
            BernoulliWorker(accuracy=1.5)


class TestAmbiguityAwareWorker:
    def test_error_peaks_at_half_likelihood(self):
        worker = AmbiguityAwareWorker(base_error=0.02, ambiguous_error=0.3)
        assert worker.error_probability(0.5) == pytest.approx(0.3)
        assert worker.error_probability(0.0) == pytest.approx(0.02)
        assert worker.error_probability(1.0) == pytest.approx(0.02)

    def test_error_interpolates(self):
        worker = AmbiguityAwareWorker(base_error=0.0, ambiguous_error=0.4)
        assert worker.error_probability(0.75) == pytest.approx(0.2)

    def test_false_positive_bias_scales_non_matching_errors(self):
        worker = AmbiguityAwareWorker(
            base_error=0.1, ambiguous_error=0.1, false_positive_bias=3.0
        )
        assert worker.error_probability(0.5, Label.NON_MATCHING) == pytest.approx(0.3)
        assert worker.error_probability(0.5, Label.MATCHING) == pytest.approx(0.1)

    def test_false_negative_bias_scales_matching_errors(self):
        worker = AmbiguityAwareWorker(
            base_error=0.1, ambiguous_error=0.1, false_negative_bias=2.0
        )
        assert worker.error_probability(0.5, Label.MATCHING) == pytest.approx(0.2)

    def test_error_capped(self):
        worker = AmbiguityAwareWorker(
            base_error=0.5, ambiguous_error=0.5, false_positive_bias=10.0
        )
        assert worker.error_probability(0.5, Label.NON_MATCHING) == 0.95

    def test_systematic_errors_are_shared_across_workers(self):
        """Two workers with the same salt err on exactly the same pairs when
        errors are fully systematic."""
        workers = [
            AmbiguityAwareWorker(
                base_error=0.5,
                ambiguous_error=0.5,
                systematic_fraction=1.0,
                salt=42,
                seed=i,
            )
            for i in range(2)
        ]
        pairs = [Pair(f"x{i}", f"y{i}") for i in range(200)]
        answers = [
            [w.answer(pair, Label.MATCHING, 0.5) for pair in pairs] for w in workers
        ]
        assert answers[0] == answers[1]
        # and roughly half are wrong
        wrong = sum(1 for a in answers[0] if a is Label.NON_MATCHING)
        assert 60 < wrong < 140

    def test_idiosyncratic_errors_differ_across_workers(self):
        workers = [
            AmbiguityAwareWorker(
                base_error=0.5, ambiguous_error=0.5, systematic_fraction=0.0, seed=i
            )
            for i in range(2)
        ]
        pairs = [Pair(f"x{i}", f"y{i}") for i in range(200)]
        answers = [
            [w.answer(pair, Label.MATCHING, 0.5) for pair in pairs] for w in workers
        ]
        assert answers[0] != answers[1]

    def test_rejects_bad_systematic_fraction(self):
        with pytest.raises(ValueError):
            AmbiguityAwareWorker(systematic_fraction=1.5)


class TestQualificationTest:
    def test_perfect_worker_passes(self):
        assert QualificationTest().passes(PerfectWorker(), seed=5)

    def test_hopeless_worker_fails(self):
        assert not QualificationTest().passes(BernoulliWorker(accuracy=0.0, seed=1), seed=5)

    def test_filters_pool(self):
        pool = make_worker_pool(
            60, accuracy=0.5, qualification=QualificationTest(), seed=9
        )
        # accuracy-0.5 workers pass three questions with probability 1/8
        assert 0 < len(pool) < 30


class TestWorkerPool:
    def test_pool_size(self):
        assert len(make_worker_pool(10, seed=1)) == 10

    def test_speeds_are_positive_and_varied(self):
        pool = make_worker_pool(20, seed=2)
        speeds = {w.speed for w in pool}
        assert all(s > 0 for s in speeds)
        assert len(speeds) > 1

    def test_worker_speed_validation(self):
        with pytest.raises(ValueError):
            Worker(worker_id=0, model=PerfectWorker(), speed=0.0)

    def test_accuracy_and_ambiguity_are_exclusive(self):
        with pytest.raises(ValueError):
            make_worker_pool(5, accuracy=0.9, ambiguity_aware=True)

    def test_deterministic_given_seed(self):
        pool_a = make_worker_pool(5, seed=7)
        pool_b = make_worker_pool(5, seed=7)
        assert [w.speed for w in pool_a] == [w.speed for w in pool_b]
