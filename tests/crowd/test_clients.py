"""Unit tests for the PlatformClient implementations and runtime policies."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.crowd.budget import BudgetExceededError, BudgetPolicy, CostModel
from repro.crowd.clients import (
    CallbackPlatformClient,
    HITExpiry,
    InMemoryCrowdBackend,
    ManualClock,
    PlatformClient,
    PollingPlatformClient,
    SimulatedPlatformClient,
)
from repro.crowd.latency import TimeoutPolicy
from repro.crowd.platform import HITCompletion
from repro.engine import CrowdRuntime, LabelingEngine, RuntimeMode

from ..aio import run_async
from ..conftest import FIGURE3_ENTITIES

ENTITIES = {"a": 0, "b": 0, "c": 1, "d": 1, "e": 2}
TRUTH = GroundTruthOracle(ENTITIES)
PAIRS = [Pair("a", "b"), Pair("c", "d"), Pair("a", "c"), Pair("d", "e")]


class TestSimulatedPlatformClient:
    def test_protocol_conformance(self):
        client = SimulatedPlatformClient.for_oracle(TRUTH)
        assert isinstance(client, PlatformClient)

    def test_submit_step_drain_cycle(self):
        async def scenario():
            client = SimulatedPlatformClient.for_oracle(TRUTH, batch_size=2)
            hits = await client.submit_pairs(PAIRS)
            assert [len(hit) for hit in hits] == [2, 2]
            assert client.n_outstanding_hits == 2
            first = await client.next_event()
            assert isinstance(first, HITCompletion)
            assert first.hit.hit_id == hits[0].hit_id  # zero latency => FIFO
            assert first.labels == {p: TRUTH.label(p) for p in hits[0].pairs}
            leftovers = await client.drain()
            assert [c.hit.hit_id for c in leftovers] == [hits[1].hit_id]
            assert await client.next_event() is None
            assert client.n_outstanding_hits == 0

        run_async(scenario())

    def test_expiry_injection_reports_each_hit_at_most_once(self):
        async def scenario():
            base = SimulatedPlatformClient.for_oracle(TRUTH, batch_size=1)
            client = SimulatedPlatformClient(
                base.platform, expire_probability=1.0, expire_seed=0
            )
            hits = await client.submit_pairs(PAIRS[:1])
            event = await client.next_event()
            assert isinstance(event, HITExpiry)
            assert event.hit.hit_id == hits[0].hit_id
            # Re-issued as a fresh HIT: that one expires (once) too, and so
            # on — each *hit id* expires at most once.
            again = await client.submit_pairs(PAIRS[:1])
            event = await client.next_event()
            assert isinstance(event, HITExpiry)
            assert event.hit.hit_id == again[0].hit_id

        run_async(scenario())

    def test_rejects_bad_probability(self):
        platform = SimulatedPlatformClient.for_oracle(TRUTH).platform
        with pytest.raises(ValueError):
            SimulatedPlatformClient(platform, expire_probability=1.5)


class TestInMemoryCrowdBackend:
    def test_requires_exactly_one_answer_source(self):
        with pytest.raises(ValueError):
            InMemoryCrowdBackend()
        with pytest.raises(ValueError):
            InMemoryCrowdBackend(
                oracle=TRUTH, answer_fn=lambda pair: Label.MATCHING
            )

    def test_scheduled_completion_requires_clock(self):
        with pytest.raises(ValueError):
            InMemoryCrowdBackend(oracle=TRUTH, latency=lambda rng: 1.0)

    def test_complete_all_orders(self):
        backend = InMemoryCrowdBackend(oracle=TRUTH, seed=1)
        backend.create_hits(
            [
                {"hit_id": i, "pairs": (PAIRS[i],), "n_assignments": 1}
                for i in range(4)
            ]
        )
        assert backend.pending_ids() == [0, 1, 2, 3]
        order = backend.complete_all(order="lifo")
        assert order == [3, 2, 1, 0]
        fetched = [record["hit_id"] for record in backend.fetch_completed()]
        assert fetched == [3, 2, 1, 0]
        assert backend.fetch_completed() == []

    def test_expire_removes_pending(self):
        backend = InMemoryCrowdBackend(oracle=TRUTH)
        backend.create_hits([{"hit_id": 9, "pairs": (PAIRS[0],), "n_assignments": 1}])
        assert backend.expire_hit(9) is True
        assert backend.expire_hit(9) is False
        with pytest.raises(KeyError):
            backend.complete(9)


class TestPollingPlatformClient:
    def make(self, **kwargs):
        clock = ManualClock()
        backend = InMemoryCrowdBackend(oracle=TRUTH)
        client = PollingPlatformClient(
            backend,
            batch_size=1,
            n_assignments=1,
            poll_interval=1.0,
            clock=clock.now,
            sleep=clock.sleep,
            **kwargs,
        )
        return clock, backend, client

    def test_out_of_order_fetch(self):
        async def scenario():
            _, backend, client = self.make()
            hits = await client.submit_pairs(PAIRS)
            backend.complete(hits[2].hit_id)
            backend.complete(hits[0].hit_id)
            first = await client.next_event()
            second = await client.next_event()
            assert [first.hit.hit_id, second.hit.hit_id] == [
                hits[2].hit_id,
                hits[0].hit_id,
            ]
            assert first.labels == {PAIRS[2]: TRUTH.label(PAIRS[2])}

        run_async(scenario())

    def test_timeout_expires_and_late_completion_is_dropped(self):
        async def scenario():
            clock, backend, client = self.make(hit_timeout=5.0)
            hits = await client.submit_pairs(PAIRS[:1])
            clock.advance(6.0)
            event = await client.next_event()
            assert isinstance(event, HITExpiry)
            assert event.hit.hit_id == hits[0].hit_id
            assert client.n_outstanding_hits == 0
            # The backend can no longer complete it (expired server-side)...
            with pytest.raises(KeyError):
                backend.complete(hits[0].hit_id)
            # ...and even a forged late record for that id is ignored.
            backend.create_hits(
                [{"hit_id": hits[0].hit_id, "pairs": hits[0].pairs, "n_assignments": 1}]
            )
            backend.complete(hits[0].hit_id)
            assert await client.next_event() is None

        run_async(scenario())

    def test_cancel_and_drain(self):
        async def scenario():
            _, backend, client = self.make()
            hits = await client.submit_pairs(PAIRS[:2])
            backend.complete(hits[0].hit_id)
            assert await client.cancel(hits[1].hit_id) is True
            assert await client.cancel(hits[1].hit_id) is False
            leftovers = await client.drain()
            assert [c.hit.hit_id for c in leftovers] == [hits[0].hit_id]
            assert client.n_outstanding_hits == 0
            assert backend.n_expired == 1

        run_async(scenario())

    def test_polling_waits_for_scheduled_results(self):
        async def scenario():
            clock = ManualClock()
            backend = InMemoryCrowdBackend(
                oracle=TRUTH,
                clock=clock.now,
                latency=lambda rng: 3.5,
            )
            client = PollingPlatformClient(
                backend,
                batch_size=4,
                n_assignments=1,
                poll_interval=1.0,
                clock=clock.now,
                sleep=clock.sleep,
            )
            await client.submit_pairs(PAIRS)
            event = await client.next_event()
            assert isinstance(event, HITCompletion)
            # Three empty polls advanced the virtual clock past 3.5.
            assert clock.now() >= 3.5

        run_async(scenario())


class TestCallbackPlatformClient:
    def test_push_delivery_wakes_the_consumer(self):
        async def scenario():
            outbox = []
            client = CallbackPlatformClient(
                outbox.extend, batch_size=2, n_assignments=1
            )
            hits = await client.submit_pairs(PAIRS)
            assert [h.hit_id for h in outbox] == [h.hit_id for h in hits]

            async def webhook():
                await asyncio.sleep(0)
                for hit in reversed(outbox):  # deliberately out of order
                    client.deliver_completion(
                        hit.hit_id, {p: TRUTH.label(p) for p in hit.pairs}
                    )

            task = asyncio.create_task(webhook())
            first = await client.next_event()
            second = await client.next_event()
            await task
            assert [first.hit.hit_id, second.hit.hit_id] == [
                hits[1].hit_id,
                hits[0].hit_id,
            ]
            assert await client.next_event() is None

        run_async(scenario())

    def test_delivery_validation(self):
        async def scenario():
            client = CallbackPlatformClient(lambda hits: None, batch_size=2)
            (hit,) = await client.submit_pairs(PAIRS[:2])
            with pytest.raises(ValueError):
                client.deliver_completion(hit.hit_id, {PAIRS[0]: Label.MATCHING})
            assert client.deliver_completion(999, {}) is False
            assert client.deliver_expiry(hit.hit_id) is True
            assert client.deliver_expiry(hit.hit_id) is False

        run_async(scenario())

    def test_cancel_wakes_a_blocked_consumer(self):
        """Cancelling the last outstanding HIT must wake a task parked in
        next_event so it can observe the drained client and return None."""

        async def scenario():
            client = CallbackPlatformClient(lambda hits: None, batch_size=4)
            (hit,) = await client.submit_pairs(PAIRS)
            waiter = asyncio.create_task(client.next_event())
            await asyncio.sleep(0)  # let the waiter park on the event
            assert not waiter.done()
            assert await client.cancel(hit.hit_id) is True
            return await asyncio.wait_for(waiter, timeout=5.0)

        assert run_async(scenario()) is None

    def test_cancel_invokes_callback(self):
        async def scenario():
            cancelled = []
            client = CallbackPlatformClient(
                lambda hits: None, cancel_hit=cancelled.append, batch_size=4
            )
            (hit,) = await client.submit_pairs(PAIRS)
            await client.close()
            assert cancelled == [hit.hit_id]
            assert client.n_outstanding_hits == 0

        run_async(scenario())

    def test_full_campaign_over_webhooks(self):
        """A transitive campaign whose crowd is a concurrent webhook task
        answering HITs last-in-first-out."""
        truth = GroundTruthOracle(FIGURE3_ENTITIES)
        order = [
            Pair("o1", "o2"),
            Pair("o2", "o3"),
            Pair("o1", "o6"),
            Pair("o1", "o3"),
            Pair("o4", "o5"),
            Pair("o4", "o6"),
            Pair("o2", "o4"),
            Pair("o5", "o6"),
        ]

        async def scenario():
            outbox = []
            client = CallbackPlatformClient(
                outbox.extend, batch_size=3, n_assignments=1
            )
            engine = LabelingEngine(order)
            runtime = CrowdRuntime(engine, client, mode=RuntimeMode.HIT_INSTANT)

            async def crowd():
                while True:
                    while outbox:
                        hit = outbox.pop()  # LIFO: answers arrive out of order
                        client.deliver_completion(
                            hit.hit_id, {p: truth.label(p) for p in hit.pairs}
                        )
                    await asyncio.sleep(0)

            task = asyncio.create_task(crowd())
            try:
                report = await runtime.run()
            finally:
                task.cancel()
            return engine, report

        engine, report = run_async(scenario())
        assert engine.is_done
        for pair in order:
            assert engine.result.label_of(pair) is truth.label(pair)
        # Transitivity still saves money at HIT granularity: 8 candidates,
        # at most 6 crowdsourced (Figure 3's optimum).
        assert engine.result.n_crowdsourced <= 6


class TestRuntimePolicies:
    def test_budget_policy_authorize(self):
        policy = BudgetPolicy(max_assignments=5)
        assert policy.authorize(0, 5) == 5
        with pytest.raises(BudgetExceededError):
            policy.authorize(5, 1)

    def test_budget_policy_cost_cap(self):
        policy = BudgetPolicy(max_cost=0.10, model=CostModel(0.02))
        assert policy.authorize(0, 5) == 5
        with pytest.raises(BudgetExceededError):
            policy.authorize(5, 1)

    def test_budget_policy_validation(self):
        with pytest.raises(ValueError):
            BudgetPolicy(max_cost=-1.0)
        with pytest.raises(ValueError):
            BudgetPolicy(max_assignments=-2)

    def test_timeout_policy_validation(self):
        with pytest.raises(ValueError):
            TimeoutPolicy(hit_timeout=0.0)
        with pytest.raises(ValueError):
            TimeoutPolicy(hit_timeout=1.0, max_reissues=-1)

    def test_manual_clock(self):
        clock = ManualClock(start=2.0)
        clock.advance(1.5)
        assert clock.now() == pytest.approx(3.5)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
