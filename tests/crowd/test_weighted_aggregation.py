"""Quality-aware aggregation: weighted majority + worker-accuracy tracking.

The contract, in increasing strength:

* with a fresh tracker every worker carries the same weight, so the
  weighted majority is *exactly* the flat majority (property-tested);
* raising one worker's tracked accuracy moves the aggregate monotonically
  toward that worker's vote — it can flip toward them, never away;
* the gold-question estimator converges to a worker's true accuracy under
  seeded :class:`LikelihoodAwareWorker` noise;
* on a heterogeneous crowd (one strong worker, two coin-flippers) the
  weighted aggregate recovers strictly more true labels than flat majority
  voting (also gated, with timings, in ``benchmarks/bench_core_micro.py``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pairs import Label, Pair
from repro.crowd.aggregation import (
    WeightedAggregation,
    WorkerAccuracyTracker,
    summarize_assignments,
)
from repro.crowd.hit import HIT, Assignment
from repro.crowd.worker import LikelihoodAwareWorker

M, N = Label.MATCHING, Label.NON_MATCHING


def _hit(n_pairs: int, n_assignments: int = 3) -> HIT:
    pairs = tuple(Pair(f"a{i}", f"b{i}") for i in range(n_pairs))
    return HIT(hit_id=0, pairs=pairs, n_assignments=n_assignments)


def _assignment(hit: HIT, worker_id: int, labels) -> Assignment:
    return Assignment(hit=hit, worker_id=worker_id, answers=dict(zip(hit.pairs, labels)))


class TestUniformWeightsEqualFlatMajority:
    @given(
        st.lists(
            st.lists(st.sampled_from([M, N]), min_size=2, max_size=4),
            min_size=1,
            max_size=5,
        ).filter(lambda rows: len({len(r) for r in rows} | {len(rows[0])}) == 1)
    )
    @settings(max_examples=60)
    def test_fresh_tracker_reproduces_flat_majority(self, vote_matrix):
        """Rows = workers, columns = pairs: weighted == flat, vote for vote."""
        hit = _hit(len(vote_matrix[0]))
        assignments = [
            _assignment(hit, worker_id, row)
            for worker_id, row in enumerate(vote_matrix)
        ]
        flat = summarize_assignments(assignments)
        weighted = WeightedAggregation().aggregate(assignments)
        assert set(weighted) == set(flat)
        for pair in flat:
            assert weighted[pair].label is flat[pair].label
            assert weighted[pair].tie_broken == flat[pair].tie_broken

    def test_weights_are_read_before_agreement_feedback(self):
        """The first HIT's aggregate must not depend on its own feedback."""
        hit = _hit(1)
        assignments = [
            _assignment(hit, 0, [M]),
            _assignment(hit, 1, [N]),
            _assignment(hit, 2, [N]),
        ]
        aggregation = WeightedAggregation()
        before = {w: aggregation.tracker.weight(w) for w in (0, 1, 2)}
        summary = aggregation.aggregate(assignments)[hit.pairs[0]]
        assert summary.label is N
        assert summary.matching_weight == pytest.approx(before[0])
        assert summary.non_matching_weight == pytest.approx(before[1] + before[2])
        # ...and the feedback did land afterwards: agreeing workers rose.
        assert aggregation.tracker.accuracy(1) > aggregation.tracker.prior_accuracy
        assert aggregation.tracker.accuracy(0) < aggregation.tracker.prior_accuracy


class TestMonotonicity:
    def test_raising_one_workers_accuracy_never_flips_away_from_them(self):
        """Sweep worker 0's gold record upward: the 1-vs-2 aggregate may
        flip toward worker 0's vote exactly once, and never back."""
        hit = _hit(1)
        pair = hit.pairs[0]
        labels_seen = []
        for n_gold in range(0, 30):
            tracker = WorkerAccuracyTracker()
            for _ in range(n_gold):
                tracker.record_gold(0, correct=True)
            aggregation = WeightedAggregation(
                tracker=tracker, update_from_agreement=False
            )
            assignments = [
                _assignment(hit, 0, [M]),
                _assignment(hit, 1, [N]),
                _assignment(hit, 2, [N]),
            ]
            labels_seen.append(aggregation.aggregate(assignments)[pair].label)
        assert labels_seen[0] is N  # fresh tracker: plain 2-to-1 majority
        assert labels_seen[-1] is M  # proven worker out-votes two coin-flips
        flips = sum(
            1 for a, b in zip(labels_seen, labels_seen[1:]) if a is not b
        )
        assert flips == 1, "aggregate flipped back after favouring worker 0"

    def test_accuracy_estimates_stay_clamped(self):
        tracker = WorkerAccuracyTracker()
        for _ in range(1000):
            tracker.record_gold(0, correct=True)
            tracker.record_gold(1, correct=False)
        assert tracker.accuracy(0) == tracker.max_accuracy
        assert tracker.accuracy(1) == tracker.min_accuracy
        assert tracker.weight(0) == pytest.approx(-tracker.weight(1))  # symmetric log-odds


class TestGoldConvergence:
    @pytest.mark.parametrize("ambiguous_error", [0.05, 0.35])
    def test_estimator_converges_to_true_error_rate(self, ambiguous_error):
        """Feed one worker's answers to gold probes of fixed likelihood 0.5
        (where error == ambiguous_error) and compare the estimate against
        the analytic accuracy."""
        worker = LikelihoodAwareWorker(
            base_error=0.02, ambiguous_error=ambiguous_error, seed=11
        )
        tracker = WorkerAccuracyTracker(prior_strength=2.0)
        true_accuracy = 1.0 - worker.error_probability(0.5, M)
        for i in range(600):
            probe = Pair(f"g{i}", f"h{i}")
            answer = worker.answer(probe, M, likelihood=0.5)
            tracker.record_gold(7, correct=answer is M)
        assert tracker.accuracy(7) == pytest.approx(true_accuracy, abs=0.05)
        assert tracker.n_observations(7) == pytest.approx(600)

    def test_score_gold_reads_answers_off_an_assignment(self):
        hit = _hit(3)
        aggregation = WeightedAggregation()
        assignment = _assignment(hit, 4, [M, N, M])
        gold = {hit.pairs[0]: M, hit.pairs[1]: M, Pair("x", "y"): N}
        scored = aggregation.score_gold(assignment, gold)
        assert scored == 2  # the unanswered gold pair is skipped
        assert aggregation.tracker.n_observations(4) == pytest.approx(2.0)
        # one right, one wrong out of two golds on a 0.7/8.0 prior
        expected = (0.7 * 8.0 + 1.0) / (8.0 + 2.0)
        assert aggregation.tracker.accuracy(4) == pytest.approx(expected)


class TestWeightedBeatsFlat:
    def test_weighted_majority_recovers_more_labels_under_seeded_noise(self):
        """One strong worker (error 0.05) against two near-coin-flip workers
        (error 0.45): gold-primed weighted voting beats flat majority."""
        strong = LikelihoodAwareWorker(base_error=0.05, ambiguous_error=0.05, seed=1)
        noisy_a = LikelihoodAwareWorker(base_error=0.45, ambiguous_error=0.45, seed=2)
        noisy_b = LikelihoodAwareWorker(base_error=0.45, ambiguous_error=0.45, seed=3)
        crowd = {0: strong, 1: noisy_a, 2: noisy_b}
        tracker = WorkerAccuracyTracker()
        aggregation = WeightedAggregation(tracker=tracker, update_from_agreement=False)
        # Gold priming: 40 probes of known label per worker.
        for i in range(40):
            probe = Pair(f"gold{i}", f"gold{i}'")
            for worker_id, model in crowd.items():
                answer = model.answer(probe, M, likelihood=0.9)
                tracker.record_gold(worker_id, correct=answer is M)
        flat_correct = weighted_correct = 0
        n_pairs = 300
        for i in range(n_pairs):
            hit = HIT(hit_id=i, pairs=(Pair(f"p{i}", f"q{i}"),), n_assignments=3)
            truth = M if i % 2 == 0 else N
            assignments = [
                _assignment(hit, worker_id, [model.answer(hit.pairs[0], truth, 0.9)])
                for worker_id, model in crowd.items()
            ]
            flat = summarize_assignments(assignments)[hit.pairs[0]].label
            weighted = aggregation.aggregate(assignments)[hit.pairs[0]].label
            flat_correct += flat is truth
            weighted_correct += weighted is truth
        assert weighted_correct > flat_correct
        assert weighted_correct / n_pairs > 0.9


class TestPersistence:
    def test_tracker_round_trips_through_snapshot(self):
        tracker = WorkerAccuracyTracker()
        tracker.record_gold(3, correct=True)
        tracker.record_agreement(5, agreed=False)
        restored = WorkerAccuracyTracker()
        restored.restore_state(tracker.snapshot_state())
        assert restored.known_workers() == [3, 5]
        for worker_id in (3, 5, 99):
            assert restored.accuracy(worker_id) == tracker.accuracy(worker_id)

    def test_aggregation_round_trips_through_snapshot(self):
        aggregation = WeightedAggregation()
        aggregation.tracker.record_gold(1, correct=False)
        restored = WeightedAggregation()
        restored.restore_state(aggregation.snapshot_state())
        assert restored.tracker.accuracy(1) == aggregation.tracker.accuracy(1)

    @pytest.mark.parametrize("cls", [WorkerAccuracyTracker, WeightedAggregation])
    def test_unknown_state_version_rejected(self, cls):
        with pytest.raises(ValueError, match="version"):
            cls().restore_state({"version": 999})

    def test_tracker_validates_its_knobs(self):
        with pytest.raises(ValueError, match="prior_accuracy"):
            WorkerAccuracyTracker(prior_accuracy=1.0)
        with pytest.raises(ValueError, match="prior_strength"):
            WorkerAccuracyTracker(prior_strength=0.0)
        with pytest.raises(ValueError, match="min_accuracy"):
            WorkerAccuracyTracker(min_accuracy=0.9, max_accuracy=0.1)
