"""Engine parity: the dispatch strategies must replicate the pre-refactor
labelers exactly, on randomized worlds.

``tests/engine/reference.py`` holds frozen transcriptions of the seed
repo's loops; these property tests pin the refactor to them:

* ``SequentialDispatch`` ≡ old ``SequentialLabeler`` — same labels, same
  crowdsourced count, same oracle-call order;
* ``RoundParallelDispatch`` ≡ old ``ParallelLabeler`` — same per-round
  published sets (and, being order-preserving scans, the same lists);
* the shared frontier ≡ the old Algorithm-3 selection scan at arbitrary
  intermediate labeling states.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.oracle import GroundTruthOracle, LabelOracle
from repro.core.pairs import Label, Pair
from repro.engine import (
    LabelingEngine,
    RoundParallelDispatch,
    SequentialDispatch,
    must_crowdsource_frontier,
)

from ..strategies import worlds
from .reference import (
    reference_parallel,
    reference_parallel_selection,
    reference_sequential,
)


class RecordingOracle(LabelOracle):
    """Wraps an oracle and records the pairs it is asked about, in order."""

    def __init__(self, inner: LabelOracle) -> None:
        self.inner = inner
        self.calls: list[Pair] = []

    def label(self, pair: Pair) -> Label:
        self.calls.append(pair)
        return self.inner.label(pair)


class TestSequentialParity:
    @given(worlds())
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_exactly(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        ref_oracle = RecordingOracle(truth)
        new_oracle = RecordingOracle(truth)
        reference = reference_sequential(candidates, ref_oracle)
        result = SequentialDispatch().run(candidates, new_oracle)
        assert result.labels() == reference.labels()
        assert result.n_crowdsourced == reference.n_crowdsourced
        assert result.n_deduced == reference.n_deduced
        assert new_oracle.calls == ref_oracle.calls
        assert result.rounds == reference.rounds

    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_outcome_records_identical(self, world):
        """Provenance, round index, and record position all match."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_sequential(candidates, truth)
        result = SequentialDispatch().run(candidates, truth)
        assert result.outcomes == reference.outcomes


class TestRoundParallelParity:
    @given(worlds())
    @settings(max_examples=80, deadline=None)
    def test_same_published_sets_per_round(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_parallel(candidates, truth)
        result = RoundParallelDispatch().run(candidates, truth)
        assert result.rounds == reference.rounds
        assert result.labels() == reference.labels()
        assert result.n_crowdsourced == reference.n_crowdsourced

    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_outcome_records_identical(self, world):
        """The incremental sweep resolves the same pairs in the same rounds
        (and, position-sorted, records them in the same order) as the
        reference's full rescan."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_parallel(candidates, truth)
        result = RoundParallelDispatch().run(candidates, truth)
        assert result.outcomes == reference.outcomes

    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_oracle_call_order_matches(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        ref_oracle = RecordingOracle(truth)
        new_oracle = RecordingOracle(truth)
        reference_parallel(candidates, ref_oracle)
        RoundParallelDispatch().run(candidates, new_oracle)
        assert new_oracle.calls == ref_oracle.calls


class TestEngineEdgeCases:
    def test_duplicate_pairs_collapse_to_first_occurrence(self):
        """An order repeating a pair must terminate and label it once (the
        pre-refactor parallel loop tolerated duplicates; sequential did not)."""
        truth = GroundTruthOracle({"a": 1, "b": 1, "c": 2})
        order = [Pair("a", "b"), Pair("a", "c"), Pair("a", "b")]
        for dispatch in (SequentialDispatch(), RoundParallelDispatch()):
            result = dispatch.run(order, truth)
            assert result.n_pairs == 2
            assert result.n_crowdsourced == 2
            assert result.label_of(Pair("a", "b")) is Label.MATCHING

    def test_publish_accepts_single_pass_iterables(self):
        """publish() must materialise generators before its two passes."""
        engine = LabelingEngine([Pair("a", "b"), Pair("b", "c"), Pair("a", "c")])
        engine.publish(pair for pair in [Pair("a", "c")])
        assert Pair("a", "c") in engine.published
        engine.record_answer(Pair("a", "b"), Label.MATCHING, 0)
        engine.record_answer(Pair("b", "c"), Label.MATCHING, 0)
        # The published pair is withheld: the sweep must not resolve it.
        assert engine.sweep(0) == []
        engine.record_answer(Pair("a", "c"), Label.MATCHING, 0)
        assert engine.is_done


class TestFrontierParity:
    @given(worlds())
    @settings(max_examples=80, deadline=None)
    def test_selection_matches_reference_at_every_prefix(self, world):
        """The shared frontier equals the old Algorithm-3 scan at every
        intermediate labeling state of a sequential run."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        pairs = [c.pair for c in candidates]
        labeled: dict[Pair, Label] = {}
        for pair in pairs:
            assert must_crowdsource_frontier(
                candidates, labeled
            ) == reference_parallel_selection(candidates, labeled)
            labeled.setdefault(pair, truth.label(pair))

    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_engine_frontier_excludes_published(self, world):
        candidates, entity_of = world
        engine = LabelingEngine(candidates)
        first = engine.frontier()
        assert first == reference_parallel_selection(candidates, {})
        if first:
            engine.publish(first[:1])
            assert engine.frontier() == reference_parallel_selection(
                candidates, {}, exclude={first[0]}
            )
