"""Engine-level parity and edge cases for machinery the backend matrix
does not cover.

Strategy-vs-reference parity across every backend lives in
``tests/engine/test_backend_matrix.py`` (one parametrized suite instead of
per-backend copies); what remains here is the *frontier machinery* itself —
the shared Algorithm-3 selection against the seed repo's frozen scan — and
engine edge cases that are backend-independent.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.engine import LabelingEngine, must_crowdsource_frontier

from ..strategies import worlds
from .reference import reference_parallel_selection


class TestEngineEdgeCases:
    def test_publish_accepts_single_pass_iterables(self):
        """publish() must materialise generators before its two passes."""
        engine = LabelingEngine([Pair("a", "b"), Pair("b", "c"), Pair("a", "c")])
        engine.publish(pair for pair in [Pair("a", "c")])
        assert Pair("a", "c") in engine.published
        engine.record_answer(Pair("a", "b"), Label.MATCHING, 0)
        engine.record_answer(Pair("b", "c"), Label.MATCHING, 0)
        # The published pair is withheld: the sweep must not resolve it.
        assert engine.sweep(0) == []
        engine.record_answer(Pair("a", "c"), Label.MATCHING, 0)
        assert engine.is_done


class TestFrontierParity:
    @given(worlds())
    @settings(max_examples=80, deadline=None)
    def test_selection_matches_reference_at_every_prefix(self, world):
        """The shared frontier equals the old Algorithm-3 scan at every
        intermediate labeling state of a sequential run."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        pairs = [c.pair for c in candidates]
        labeled: dict[Pair, Label] = {}
        for pair in pairs:
            assert must_crowdsource_frontier(
                candidates, labeled
            ) == reference_parallel_selection(candidates, labeled)
            labeled.setdefault(pair, truth.label(pair))

    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_engine_frontier_excludes_published(self, world):
        candidates, entity_of = world
        engine = LabelingEngine(candidates)
        first = engine.frontier()
        assert first == reference_parallel_selection(candidates, {})
        if first:
            engine.publish(first[:1])
            assert engine.frontier() == reference_parallel_selection(
                candidates, {}, exclude={first[0]}
            )
