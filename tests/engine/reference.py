"""Pre-refactor reference labelers, frozen for engine parity testing.

These are verbatim transcriptions of the seed repo's ``SequentialLabeler``
and ``ParallelLabeler`` loops from before they became facades over the
shared :class:`repro.engine.LabelingEngine` — including their own copy of
the optimistic must-crowdsource scan and the O(pending) full-rescan
deduction sweep.  They deliberately share nothing with ``repro.engine`` so
the parity property tests compare two independent implementations.

Alongside the frozen references live the shared differential-test helpers
every backend suite uses — :class:`RecordingOracle`, :func:`block_world`
(a deterministic multi-component world, essential for worker-loss tests
where single-component worlds collapse to one worker), and the
shuffled/expiring simulated-client factories that exercise out-of-order
completion and HIT re-issue.  The parallel- and distributed-backend suites
import them from here instead of copy-pasting per file.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.cluster_graph import ClusterGraph, ConflictPolicy
from repro.core.oracle import GroundTruthOracle, LabelOracle
from repro.core.pairs import CandidatePair, Label, Pair, Provenance
from repro.core.result import LabelingResult
from repro.core.union_find import UnionFind
from repro.crowd.clients import SimulatedPlatformClient
from repro.crowd.latency import LognormalLatency
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.worker import make_worker_pool


class RecordingOracle(LabelOracle):
    """Wraps an oracle and records the pairs it is asked about, in order.

    The differential suites compare oracle-call *order* between a strategy
    and its frozen reference, so this helper lives here with the references.
    """

    def __init__(self, inner: LabelOracle) -> None:
        self.inner = inner
        self.calls: List[Pair] = []

    def label(self, pair: Pair) -> Label:
        self.calls.append(pair)
        return self.inner.label(pair)


def _as_pairs(order: Sequence[Union[Pair, CandidatePair]]) -> List[Pair]:
    return [item.pair if isinstance(item, CandidatePair) else item for item in order]


def block_world(
    n_blocks: int = 8, objects_per_block: int = 5
) -> Tuple[List[Pair], GroundTruthOracle]:
    """A deterministic multi-component world: disjoint blocks, so the order
    splits into ``n_blocks`` static components and genuinely exercises the
    cross-worker routing and merge paths.  Worker-loss differentials need
    this shape — a single-component world collapses to one worker, and
    killing it is (correctly) unrecoverable."""
    entity_of = {}
    order = []
    for b in range(n_blocks):
        objs = [f"b{b}o{i}" for i in range(objects_per_block)]
        for i, obj in enumerate(objs):
            entity_of[obj] = b * objects_per_block + i // 2
        for i in range(len(objs)):
            for j in range(i + 1, len(objs)):
                order.append(Pair(objs[i], objs[j]))
    return order, GroundTruthOracle(entity_of)


def shuffled_client_factory(seed: int):
    """Simulated client whose completions arrive out of publication order:
    a pool of perfect workers with distinct speeds plus lognormal pickup
    delays, one pair per HIT."""

    def factory(oracle):
        platform = SimulatedPlatform(
            workers=make_worker_pool(8, seed=seed),
            truth=oracle,
            latency=LognormalLatency(),
            batch_size=1,
            n_assignments=1,
            seed=seed,
        )
        return SimulatedPlatformClient(platform)

    return factory


def expiring_client_factory(seed: int, probability: float = 0.4):
    """Deterministic FIFO client that additionally abandons a seeded
    fraction of HITs (each at most once), forcing the re-issue path."""

    def factory(oracle):
        client = SimulatedPlatformClient.for_oracle(oracle, seed=seed)
        return SimulatedPlatformClient(
            client.platform, expire_probability=probability, expire_seed=seed
        )

    return factory


def reference_sequential(
    order: Sequence[Union[Pair, CandidatePair]],
    oracle: LabelOracle,
    policy: ConflictPolicy = ConflictPolicy.STRICT,
) -> LabelingResult:
    """The seed repo's one-pair-at-a-time loop (paper Section 3.2)."""
    pairs = _as_pairs(order)
    graph = ClusterGraph(policy=policy)
    result = LabelingResult(order=pairs)
    round_index = 0
    for pair in pairs:
        deduced = graph.deduce(pair)
        if deduced is not None:
            result.record(pair, deduced, Provenance.DEDUCED, round_index)
            continue
        answer = oracle.label(pair)
        graph.add(pair, answer)
        result.rounds.append([pair])
        result.record(pair, answer, Provenance.CROWDSOURCED, round_index)
        round_index += 1
    return result


class _ReferenceOptimisticGraph:
    """The seed repo's optimistic cluster graph (all unlabeled pairs match)."""

    def __init__(self) -> None:
        self._uf = UnionFind()
        self._nm: Dict[Hashable, Set[Hashable]] = {}

    def assume_matching(self, a: Hashable, b: Hashable) -> None:
        root_a = self._uf.find(a)
        root_b = self._uf.find(b)
        if root_a == root_b:
            return
        survivor = self._uf.union(root_a, root_b)
        loser = root_b if survivor == root_a else root_a
        loser_nm = self._nm.pop(loser, set())
        if loser_nm:
            survivor_nm = self._nm.setdefault(survivor, set())
            for neighbour in loser_nm:
                self._nm[neighbour].discard(loser)
                if neighbour != survivor:
                    self._nm[neighbour].add(survivor)
                    survivor_nm.add(neighbour)
            if not survivor_nm:
                del self._nm[survivor]

    def add_non_matching(self, a: Hashable, b: Hashable) -> None:
        root_a = self._uf.find(a)
        root_b = self._uf.find(b)
        if root_a == root_b:
            return
        self._nm.setdefault(root_a, set()).add(root_b)
        self._nm.setdefault(root_b, set()).add(root_a)

    def must_crowdsource(self, pair: Pair) -> bool:
        if pair.left not in self._uf or pair.right not in self._uf:
            return True
        root_left = self._uf.find(pair.left)
        root_right = self._uf.find(pair.right)
        if root_left == root_right:
            return False
        return root_right not in self._nm.get(root_left, ())


def reference_parallel_selection(
    order: Sequence[Union[Pair, CandidatePair]],
    labeled: Dict[Pair, Label],
    exclude: Optional[Set[Pair]] = None,
) -> List[Pair]:
    """The seed repo's Algorithm-3 selection scan."""
    exclude = exclude or set()
    graph = _ReferenceOptimisticGraph()
    selected: List[Pair] = []
    for item in order:
        pair = item.pair if isinstance(item, CandidatePair) else item
        known = labeled.get(pair)
        if known is not None:
            if known is Label.MATCHING:
                graph.assume_matching(pair.left, pair.right)
            else:
                graph.add_non_matching(pair.left, pair.right)
            continue
        if graph.must_crowdsource(pair) and pair not in exclude:
            selected.append(pair)
        graph.assume_matching(pair.left, pair.right)
    return selected


def reference_parallel(
    order: Sequence[Union[Pair, CandidatePair]],
    oracle: LabelOracle,
    policy: ConflictPolicy = ConflictPolicy.STRICT,
) -> LabelingResult:
    """The seed repo's round-based loop (Algorithm 2) with its O(pending)
    full-rescan deduction sweep after every round."""
    pairs = _as_pairs(order)
    result = LabelingResult(order=pairs)
    labeled: Dict[Pair, Label] = {}
    graph = ClusterGraph(policy=policy)
    round_index = 0
    remaining = list(pairs)
    while remaining:
        batch = reference_parallel_selection(pairs, labeled)
        assert batch, "a round must always publish at least one pair"
        for pair in batch:
            answer = oracle.label(pair)
            labeled[pair] = answer
            graph.add(pair, answer)
            result.record(pair, answer, Provenance.CROWDSOURCED, round_index)
        result.rounds.append(batch)
        still_remaining: List[Pair] = []
        for pair in remaining:
            if pair in labeled:
                continue
            deduced = graph.deduce(pair)
            if deduced is not None:
                labeled[pair] = deduced
                result.record(pair, deduced, Provenance.DEDUCED, round_index)
            else:
                still_remaining.append(pair)
        remaining = still_remaining
        round_index += 1
    return result
