"""The backend parity matrix: every dispatch strategy × every engine backend.

Before this suite existed, backend parity lived in copy-pasted per-backend
test classes (``test_parity.py`` asserted the monolithic backend against the
frozen PR-1 references, ``test_sharding.py`` repeated the same assertions
for ``backend="sharded"``).  This file replaces those copies with one
parametrized matrix, so a future backend gets full parity coverage by adding
one entry to :data:`BACKENDS`.

Every cell of the matrix is pinned to the frozen pre-refactor references in
``tests/engine/reference.py`` (see docs/engine.md, "Testing: the frozen
reference pattern"):

* ``SequentialDispatch`` and ``AsyncDispatch(SEQUENTIAL)`` must replicate
  ``reference_sequential`` — labels, outcome records, per-round published
  lists, and oracle-call order;
* ``RoundParallelDispatch`` and ``AsyncDispatch(ROUNDS)`` must replicate
  ``reference_parallel`` the same way;
* ``InstantDispatch`` makes seeded rng-driven choices with no sequential
  reference, so its non-monolithic cells are pinned to the *monolithic* run
  instead: identical frontiers mean identical published pools, so labels,
  rounds, the availability trace, and the publish events must all coincide.

The ``parallel`` column runs real worker processes (``parallel_threshold=0``
forces them even on these small worlds), so every cell here is also an
end-to-end differential test of the process-parallel executor.  The
``vectorized`` column exercises the array-native kernels when numpy is
installed; without it the engine's documented fallback makes the column a
second run of the sharded backend, so the matrix passes either way (the
``no-extras`` CI leg relies on that).  The ``distributed`` column spawns
local :class:`~repro.engine.distributed.ShardWorkerHost` processes and runs
the whole command protocol over real TCP sockets, so every cell doubles as
an end-to-end wire-protocol differential (fault injection lives in
``test_distributed.py``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.engine import (
    AsyncDispatch,
    InstantDispatch,
    RoundParallelDispatch,
    RuntimeMode,
    SequentialDispatch,
)

from ..strategies import worlds
from .reference import RecordingOracle, reference_parallel, reference_sequential

BACKENDS = ("monolithic", "sharded", "vectorized", "parallel", "distributed")

#: Worker processes per parallel-backend engine in this file: enough to
#: split multi-component worlds, small enough to keep per-example spawn
#: cost negligible.
PARALLEL_WORKERS = 2


def backend_options(backend: str) -> dict:
    """Constructor kwargs that force the named backend on tiny worlds."""
    options = {"backend": backend}
    if backend == "parallel":
        options.update(parallel_threshold=0, n_workers=PARALLEL_WORKERS)
    elif backend == "distributed":
        # Spawned local worker hosts over real TCP sockets; the coordinator
        # caps the count at the world's component count, so tiny worlds run
        # with however many workers they can actually use.
        options.update(spawn_local_workers=PARALLEL_WORKERS)
    return options


def sequential_strategy(backend: str):
    return SequentialDispatch(**backend_options(backend))


def async_sequential_strategy(backend: str):
    return AsyncDispatch(RuntimeMode.SEQUENTIAL, **backend_options(backend))


def rounds_strategy(backend: str):
    return RoundParallelDispatch(**backend_options(backend))


def async_rounds_strategy(backend: str):
    return AsyncDispatch(RuntimeMode.ROUNDS, **backend_options(backend))


SEQUENTIAL_STRATEGIES = {
    "sequential": sequential_strategy,
    "async-sequential": async_sequential_strategy,
}
ROUNDS_STRATEGIES = {
    "rounds": rounds_strategy,
    "async-rounds": async_rounds_strategy,
}


class TestSequentialMatrix:
    """One-pair-per-round labelers vs the frozen sequential reference."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("strategy", sorted(SEQUENTIAL_STRATEGIES))
    @given(worlds())
    @settings(max_examples=15, deadline=None)
    def test_matches_reference(self, backend, strategy, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        ref_oracle = RecordingOracle(truth)
        new_oracle = RecordingOracle(truth)
        reference = reference_sequential(candidates, ref_oracle)
        result = SEQUENTIAL_STRATEGIES[strategy](backend).run(candidates, new_oracle)
        assert result.labels() == reference.labels()
        assert result.outcomes == reference.outcomes
        assert result.rounds == reference.rounds
        assert new_oracle.calls == ref_oracle.calls


class TestRoundsMatrix:
    """Frontier-per-round labelers vs the frozen parallel reference."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("strategy", sorted(ROUNDS_STRATEGIES))
    @given(worlds())
    @settings(max_examples=15, deadline=None)
    def test_matches_reference(self, backend, strategy, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        ref_oracle = RecordingOracle(truth)
        new_oracle = RecordingOracle(truth)
        reference = reference_parallel(candidates, ref_oracle)
        result = ROUNDS_STRATEGIES[strategy](backend).run(candidates, new_oracle)
        assert result.labels() == reference.labels()
        assert result.outcomes == reference.outcomes
        assert result.rounds == reference.rounds
        assert new_oracle.calls == ref_oracle.calls


class TestInstantMatrix:
    """InstantDispatch across backends: rng-driven choices from the
    published pool must coincide whenever the frontiers coincide, so the
    whole trace is pinned to the monolithic run."""

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "monolithic"])
    @given(worlds())
    @settings(max_examples=12, deadline=None)
    def test_identical_to_monolithic(self, backend, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        seed = 17
        mono = InstantDispatch(seed=seed, backend="monolithic").run(candidates, truth)
        other = InstantDispatch(seed=seed, **backend_options(backend)).run(
            candidates, truth
        )
        assert other.result.labels() == mono.result.labels()
        assert other.result.rounds == mono.result.rounds
        assert other.trace == mono.trace
        assert other.publish_events == mono.publish_events


class TestEdgeCaseMatrix:
    """Deterministic engine edge cases, uniform across backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicate_pairs_collapse_to_first_occurrence(self, backend):
        truth = GroundTruthOracle({"a": 1, "b": 1, "c": 2})
        order = [Pair("a", "b"), Pair("a", "c"), Pair("a", "b")]
        for make in (sequential_strategy, rounds_strategy):
            result = make(backend).run(order, truth)
            assert result.n_pairs == 2
            assert result.n_crowdsourced == 2
            assert result.label_of(Pair("a", "b")) is Label.MATCHING

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_pair_order(self, backend):
        truth = GroundTruthOracle({"a": 0, "b": 0})
        result = rounds_strategy(backend).run([Pair("a", "b")], truth)
        assert result.labels() == {Pair("a", "b"): Label.MATCHING}
        assert result.rounds == [[Pair("a", "b")]]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fully_deducible_tail(self, backend):
        """A chain whose last pair is implied: only the chain is paid for."""
        truth = GroundTruthOracle({"a": 0, "b": 0, "c": 0})
        order = [Pair("a", "b"), Pair("b", "c"), Pair("a", "c")]
        result = rounds_strategy(backend).run(order, truth)
        assert result.n_crowdsourced == 2
        assert result.n_deduced == 1
        assert result.label_of(Pair("a", "c")) is Label.MATCHING
