"""Sharded backend parity: ShardedClusterGraph and ShardedFrontier must be
observationally identical to the monolithic ClusterGraph and the
Algorithm-3 reference scan, on randomized worlds.

Sharding is purely a scaling feature — these tests pin it to:

* the monolithic :class:`ClusterGraph` under randomized (optionally noisy)
  answer sequences: identical deductions, cluster partitions, counters,
  conflicts, and listener event streams — including adversarial all-positive
  sequences that force every shard to merge into one;
* the shared :func:`must_crowdsource_frontier` for the per-component
  :class:`ShardedFrontier` at arbitrary labeled/published states.

Strategy-level parity against the frozen PR-1 references (every dispatch
strategy × every backend) lives in ``tests/engine/test_backend_matrix.py``.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster_graph import (
    ClusterGraph,
    ConflictPolicy,
    InconsistentLabelError,
)
from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.core.sweep import PendingPairIndex
from repro.engine import (
    LabelingEngine,
    RoundParallelDispatch,
    ShardedClusterGraph,
    ShardedFrontier,
    must_crowdsource_frontier,
    vectorized_available,
)

from ..strategies import worlds
from .reference import reference_parallel_selection


class RecordingListener:
    """Collects (event, a, b) tuples from a deduction graph."""

    def __init__(self) -> None:
        self.events: list[tuple[str, object, object]] = []

    def on_union(self, survivor, loser) -> None:
        self.events.append(("union", survivor, loser))

    def on_edge(self, root_a, root_b) -> None:
        self.events.append(("edge", root_a, root_b))


def _assert_graphs_equal(mono: ClusterGraph, sharded: ShardedClusterGraph, probes) -> None:
    assert mono.n_objects == sharded.n_objects
    assert mono.n_clusters == sharded.n_clusters
    assert mono.n_matching_edges == sharded.n_matching_edges
    assert mono.n_non_matching_edges == sharded.n_non_matching_edges
    assert mono.conflicts == sharded.conflicts
    assert {frozenset(c) for c in mono.clusters()} == {
        frozenset(c) for c in sharded.clusters()
    }
    for pair in probes:
        assert mono.deduce(pair) == sharded.deduce(pair)
        assert mono.same_cluster(pair.left, pair.right) == sharded.same_cluster(
            pair.left, pair.right
        )
    sharded.check_invariants()


class TestGraphParity:
    @given(worlds(max_objects=14, max_pairs=40), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_consistent_answer_sequences(self, world, rnd):
        """Identical behaviour on consistent (oracle-truth) answer streams,
        applied in random order."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        pairs = [c.pair for c in candidates]
        rnd.shuffle(pairs)
        mono = ClusterGraph()
        sharded = ShardedClusterGraph()
        for pair in pairs:
            label = truth.label(pair)
            assert mono.add(pair, label) == sharded.add(pair, label)
        objects = sorted(entity_of)
        probes = [Pair(a, b) for a in objects for b in objects if a < b]
        _assert_graphs_equal(mono, sharded, probes)

    @given(worlds(max_objects=12, max_pairs=30), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_noisy_first_wins_sequences(self, world, rnd):
        """Under FIRST_WINS with randomly flipped labels, both graphs drop
        the same conflicting edges and record the same conflicts."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        mono = ClusterGraph(policy=ConflictPolicy.FIRST_WINS)
        sharded = ShardedClusterGraph(policy=ConflictPolicy.FIRST_WINS)
        for cand in candidates:
            label = truth.label(cand.pair)
            if rnd.random() < 0.3:
                label = label.negate()
            assert mono.add(cand.pair, label) == sharded.add(cand.pair, label)
        objects = sorted(entity_of)
        probes = [Pair(a, b) for a in objects for b in objects if a < b]
        _assert_graphs_equal(mono, sharded, probes)

    @given(worlds(max_objects=12, max_pairs=30))
    @settings(max_examples=60, deadline=None)
    def test_listener_event_streams_identical(self, world):
        """Merge/edge events funnel through the sharded graph's listener in
        exactly the monolithic order — PendingPairIndex cannot tell the
        backends apart."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        mono, sharded = ClusterGraph(), ShardedClusterGraph()
        mono.listener = mono_events = RecordingListener()
        sharded.listener = sharded_events = RecordingListener()
        for cand in candidates:
            label = truth.label(cand.pair)
            mono.add(cand.pair, label)
            sharded.add(cand.pair, label)
        assert mono_events.events == sharded_events.events

    def test_all_positive_chain_merges_every_shard(self):
        """Adversarial all-positive sequence: N disjoint shards bridged one
        by one until a single shard holds one global cluster."""
        n = 60
        sharded = ShardedClusterGraph()
        mono = ClusterGraph()
        for i in range(0, n, 2):
            sharded.add_matching(i, i + 1)
            mono.add_matching(i, i + 1)
        assert sharded.n_shards == n // 2
        for i in range(1, n - 1, 2):
            sharded.add_matching(i, i + 1)
            mono.add_matching(i, i + 1)
        assert sharded.n_shards == 1
        assert sharded.n_clusters == 1
        probes = [Pair(0, i) for i in range(1, n)]
        _assert_graphs_equal(mono, sharded, probes)

    @given(st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_all_positive_random_spanning_order(self, rnd):
        """All-positive answers in random spanning order still converge to
        one shard with monolithic-identical structure."""
        n = 30
        edges = [(i, rnd.randrange(i)) for i in range(1, n)]  # random spanning tree
        rnd.shuffle(edges)
        sharded, mono = ShardedClusterGraph(), ClusterGraph()
        for a, b in edges:
            sharded.add_matching(a, b)
            mono.add_matching(a, b)
        assert sharded.n_shards == 1
        _assert_graphs_equal(mono, sharded, [Pair(0, i) for i in range(1, n)])

    def test_disjoint_components_stay_separate_shards(self):
        sharded = ShardedClusterGraph()
        sharded.add_matching("a1", "a2")
        sharded.add_non_matching("b1", "b2")
        sharded.add_matching("c1", "c2")
        assert sharded.n_shards == 3
        assert sharded.shard_sizes() == [2, 2, 2]
        assert sharded.deduce(Pair("a1", "b1")) is None
        assert sharded.cluster_members("a1") == {"a1", "a2"}
        # a non-matching answer bridging two shards merges them: the edge can
        # sit on a deduction path.
        sharded.add_non_matching("a1", "b1")
        assert sharded.n_shards == 2
        # negative transitivity now crosses the old shard boundary...
        assert sharded.deduce(Pair("a2", "b1")) is Label.NON_MATCHING
        # ...but unrelated pairs in the merged shard stay undeducible.
        assert sharded.deduce(Pair("a1", "b2")) is None
        assert sharded.deduce(Pair("a1", "a2")) is Label.MATCHING
        sharded.check_invariants()

    def test_strict_policy_raises_like_monolithic(self):
        sharded = ShardedClusterGraph()
        sharded.add_matching("a", "b")
        sharded.add_matching("b", "c")
        try:
            sharded.add_non_matching("a", "c")
        except InconsistentLabelError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("expected InconsistentLabelError")

    def test_copy_is_independent(self):
        sharded = ShardedClusterGraph()
        sharded.add_matching(1, 2)
        clone = sharded.copy()
        clone.add_matching(2, 3)
        assert clone.n_objects == 3
        assert sharded.n_objects == 2
        assert sharded.deduce(Pair(1, 3)) is None
        assert clone.deduce(Pair(1, 3)) is Label.MATCHING
        clone.check_invariants()
        sharded.check_invariants()


class TestShardedSweep:
    @given(worlds(max_objects=10, max_pairs=20))
    @settings(max_examples=40, deadline=None)
    def test_sweep_via_pending_pair_index(self, world):
        """The incremental sweep over a sharded graph resolves exactly what
        a monolithic full rescan would."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        pairs = [c.pair for c in candidates]
        sharded = ShardedClusterGraph()
        index = PendingPairIndex(sharded, pairs)
        mono = ClusterGraph()
        pending_mono = set(pairs)
        for pair in pairs:
            if pair not in pending_mono:
                continue
            label = truth.label(pair)
            pending_mono.discard(pair)
            index.remove(pair)
            mono.add(pair, label)
            sharded.add(pair, label)
            index.note_objects_seen(pair.left, pair.right)
            resolved = {p for p, _ in index.sweep()}
            resolved_mono = {p for p in pending_mono if mono.deduce(p) is not None}
            assert resolved == resolved_mono
            pending_mono -= resolved_mono
        assert len(index) == len(pending_mono)


class TestShardedFrontierParity:
    @given(worlds())
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_at_every_prefix(self, world):
        """The cached per-component frontier equals the reference Algorithm-3
        scan at every intermediate labeling state."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        frontier = ShardedFrontier(candidates)
        labeled: dict[Pair, Label] = {}
        for cand in candidates:
            assert frontier.frontier(labeled) == reference_parallel_selection(
                candidates, labeled
            )
            if cand.pair not in labeled:
                labeled[cand.pair] = truth.label(cand.pair)
                frontier.mark_dirty(cand.pair)
        assert frontier.frontier(labeled) == []

    @given(worlds(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_with_random_publish_churn(self, world, rnd):
        """Interleaved publish/answer events: the dirty-component cache must
        track exclude-set changes too."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        pairs = [c.pair for c in candidates]
        frontier = ShardedFrontier(candidates)
        labeled: dict[Pair, Label] = {}
        published: set[Pair] = set()
        for pair in pairs:
            if rnd.random() < 0.4:
                unlabeled = [p for p in pairs if p not in labeled]
                if unlabeled:
                    chosen = rnd.choice(unlabeled)
                    published.add(chosen)
                    frontier.mark_dirty(chosen)
            expected = must_crowdsource_frontier(candidates, labeled, exclude=published)
            assert frontier.frontier(labeled, published) == expected
            if pair not in labeled:
                labeled[pair] = truth.label(pair)
                published.discard(pair)
                frontier.mark_dirty(pair)

    @given(worlds(max_objects=10, max_pairs=16))
    @settings(max_examples=40, deadline=None)
    def test_engine_frontier_sharded_vs_monolithic(self, world):
        """The engine-level frontier is backend-independent at every step of
        a round-parallel run."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        mono = LabelingEngine(candidates, backend="monolithic")
        sharded = LabelingEngine(candidates, backend="sharded")
        assert sharded.backend == "sharded"
        round_index = 0
        while not mono.is_done:
            batch_m = mono.frontier()
            batch_s = sharded.frontier()
            assert batch_m == batch_s
            for engine in (mono, sharded):
                engine.publish(batch_m)
                for pair in batch_m:
                    engine.record_answer(pair, truth.label(pair), round_index)
                engine.sweep(round_index)
            round_index += 1
        assert sharded.is_done
        assert mono.labeled == sharded.labeled


class TestBackendSelection:
    def test_auto_threshold_flips_backend(self):
        order = [Pair(i, i + 1) for i in range(0, 40, 2)]
        assert LabelingEngine(order).backend == "monolithic"
        # Above the threshold, auto prefers the vectorized backend when
        # numpy is importable and degrades to pure-Python sharding else.
        at_scale = "vectorized" if vectorized_available() else "sharded"
        assert LabelingEngine(order, shard_threshold=10).backend == at_scale
        assert LabelingEngine(order, backend="sharded").backend == "sharded"
        assert (
            LabelingEngine(order, backend="monolithic", shard_threshold=0).backend
            == "monolithic"
        )

    def test_sharded_backend_uses_sharded_graph(self):
        order = [Pair("a", "b"), Pair("c", "d")]
        engine = LabelingEngine(order, backend="sharded")
        assert isinstance(engine.graph, ShardedClusterGraph)
        engine.record_answer(Pair("a", "b"), Label.MATCHING, 0)
        assert engine.graph.n_shards == 1

    def test_explicit_graph_pins_monolithic(self):
        graph = ClusterGraph()
        engine = LabelingEngine(
            [Pair("a", "b")], graph=graph, backend="auto", shard_threshold=0
        )
        assert engine.backend == "monolithic"
        assert engine.graph is graph

    def test_explicit_graph_with_sharded_backend_rejected(self):
        """Requesting sharding alongside a pre-populated graph is a
        contradiction, not a silent downgrade."""
        try:
            LabelingEngine([Pair("a", "b")], graph=ClusterGraph(), backend="sharded")
        except ValueError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("expected ValueError")

    def test_invalid_backend_rejected(self):
        try:
            LabelingEngine([Pair("a", "b")], backend="bogus")
        except ValueError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("expected ValueError")

    def test_random_large_world_smoke(self):
        """A seeded mid-size world driven end-to-end on the sharded backend:
        deterministic, fully labeled, shards bounded by static components."""
        rng = random.Random(7)
        entity_of = {i: rng.randrange(60) for i in range(300)}
        truth = GroundTruthOracle(entity_of)
        seen = set()
        order = []
        while len(order) < 900:
            a, b = rng.sample(range(300), 2)
            pair = Pair(a, b)
            if pair not in seen:
                seen.add(pair)
                order.append(pair)
        result = RoundParallelDispatch(backend="sharded").run(order, truth)
        assert result.n_pairs == len(order)
        for pair in order:
            assert result.label_of(pair) is truth.label(pair)
