"""Engine snapshot/restore: fingerprint-exact, backend-portable.

The journal-compaction pipeline (PR 8) rests on one property: an engine
restored from :meth:`LabelingEngine.snapshot_state` is indistinguishable —
byte-identical ``state_fingerprint()``, identical outcome records and
rounds, identical behaviour under further answers — from the engine that
produced the snapshot.  This suite quantifies that property over random
worlds, random interrupted histories (answers, sweeps, partial publishes,
withholds, optional FIRST_WINS noise), and the full backend matrix,
including cross-backend restores (a snapshot taken on any backend loads
into any other).
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster_graph import ConflictPolicy
from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.engine.engine import LabelingEngine

from ..strategies import worlds

BACKENDS = ("monolithic", "sharded", "vectorized", "parallel")


def backend_options(backend: str) -> dict:
    options = {"backend": backend}
    if backend == "parallel":
        options.update(parallel_threshold=0, n_workers=2)
    return options


def fingerprint(engine) -> str:
    return json.dumps(engine.state_fingerprint(), sort_keys=True)


def flip(label: Label) -> Label:
    return Label.NON_MATCHING if label is Label.MATCHING else Label.MATCHING


def random_history(engine, entity_of, rng, n_events: int, noisy: bool) -> int:
    """Drive the engine through an arbitrary interrupted campaign prefix.

    Mixes crowd answers (optionally noisy under FIRST_WINS), deduction
    sweeps, partial publishes (buffered, still sweepable), and withholds
    (handed to the platform) — every state a runtime snapshot can catch.
    Returns the next round index, so a caller can continue the campaign.
    """
    oracle = GroundTruthOracle(entity_of)
    round_index = 0
    for _ in range(n_events):
        if engine.is_done:
            break
        roll = rng.random()
        if roll < 0.5:
            unlabeled = [p for p in engine.pairs if p not in engine.labeled]
            pair = rng.choice(unlabeled)
            label = oracle.label(pair)
            if noisy and rng.random() < 0.3:
                label = flip(label)
            engine.record_answer(pair, label, round_index)
            round_index += 1
        elif roll < 0.7:
            engine.sweep(round_index)
        elif roll < 0.85:
            batch = engine.frontier()[:2]
            if batch:
                engine.publish(batch, withhold=False)
        else:
            published_unlabeled = [
                p for p in engine.published if p not in engine.labeled
            ]
            if published_unlabeled:
                engine.withhold([rng.choice(published_unlabeled)])
    return round_index


def finish(engine, entity_of, round_index: int) -> None:
    """Answer every remaining pair in order (the deterministic ending)."""
    oracle = GroundTruthOracle(entity_of)
    for pair in engine.pairs:
        if pair not in engine.labeled:
            engine.record_answer(pair, oracle.label(pair), round_index)
            round_index += 1
            engine.sweep(round_index)


class TestSnapshotRestore:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(worlds(), st.integers(0, 2**32 - 1), st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_restore_is_fingerprint_identical_across_backends(
        self, backend, world, seed, noisy
    ):
        candidates, entity_of = world
        rng = random.Random(seed)
        policy = ConflictPolicy.FIRST_WINS if noisy else ConflictPolicy.STRICT
        engine = LabelingEngine(
            candidates, policy=policy, **backend_options(backend)
        )
        try:
            random_history(engine, entity_of, rng, n_events=12, noisy=noisy)
            # The JSON round trip is part of the contract: snapshots live
            # inside journal records.
            snapshot = json.loads(json.dumps(engine.snapshot_state()))
            reference = fingerprint(engine)
            targets = {backend, "monolithic", "vectorized"}
            for target in sorted(targets):
                restored = LabelingEngine(
                    candidates, policy=policy, **backend_options(target)
                )
                try:
                    restored.restore_state(snapshot)
                    assert fingerprint(restored) == reference
                    assert restored.result.rounds == engine.result.rounds
                    assert restored.labeled == engine.labeled
                    original = sorted(
                        engine.result.outcomes.values(), key=lambda o: o.position
                    )
                    loaded = sorted(
                        restored.result.outcomes.values(), key=lambda o: o.position
                    )
                    assert [
                        (o.pair, o.label, o.provenance, o.round_index)
                        for o in loaded
                    ] == [
                        (o.pair, o.label, o.provenance, o.round_index)
                        for o in original
                    ]
                finally:
                    restored.close()
        finally:
            engine.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(worlds(), st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_restored_engine_continues_identically(self, backend, world, seed):
        candidates, entity_of = world
        rng = random.Random(seed)
        engine = LabelingEngine(candidates, **backend_options(backend))
        try:
            round_index = random_history(
                engine, entity_of, rng, n_events=10, noisy=False
            )
            snapshot = json.loads(json.dumps(engine.snapshot_state()))
            restored = LabelingEngine(candidates, **backend_options(backend))
            try:
                restored.restore_state(snapshot)
                finish(engine, entity_of, round_index)
                finish(restored, entity_of, round_index)
                assert fingerprint(restored) == fingerprint(engine)
            finally:
                restored.close()
        finally:
            engine.close()


class TestSnapshotValidation:
    WORLD = [
        Pair("a", "b"), Pair("b", "c"), Pair("a", "c"), Pair("c", "d"),
    ]

    def test_restore_requires_fresh_engine(self):
        engine = LabelingEngine(self.WORLD)
        engine.record_answer(engine.pairs[0], Label.MATCHING, 0)
        snapshot = engine.snapshot_state()
        with pytest.raises(ValueError, match="freshly built"):
            engine.restore_state(snapshot)

    def test_restore_rejects_other_order(self):
        engine = LabelingEngine(self.WORLD)
        snapshot = engine.snapshot_state()
        other = LabelingEngine(
            [Pair("x", "y"), Pair("y", "z"), Pair("x", "z"), Pair("z", "w")]
        )
        with pytest.raises(ValueError, match="different labeling order"):
            other.restore_state(snapshot)

    def test_restore_rejects_unknown_version(self):
        engine = LabelingEngine(self.WORLD)
        snapshot = engine.snapshot_state()
        snapshot["version"] = 99
        with pytest.raises(ValueError, match="version"):
            LabelingEngine(self.WORLD).restore_state(snapshot)

    def test_restore_rejects_policy_mismatch(self):
        engine = LabelingEngine(self.WORLD, policy=ConflictPolicy.FIRST_WINS)
        snapshot = engine.snapshot_state()
        strict = LabelingEngine(self.WORLD, policy=ConflictPolicy.STRICT)
        with pytest.raises(ValueError, match="policy"):
            strict.restore_state(snapshot)

    def test_vectorized_native_payload_falls_back_when_foreign(self):
        """A tampered native payload degrades to event replay, not corruption."""
        engine = LabelingEngine(self.WORLD, backend="vectorized")
        engine.record_answer(Pair("a", "b"), Label.MATCHING, 0)
        engine.record_answer(Pair("b", "c"), Label.MATCHING, 1)
        engine.record_answer(Pair("c", "d"), Label.NON_MATCHING, 2)
        engine.sweep(3)
        snapshot = json.loads(json.dumps(engine.snapshot_state()))
        snapshot["native"] = {"kind": "not-a-real-payload"}
        restored = LabelingEngine(self.WORLD, backend="vectorized")
        restored.restore_state(snapshot)
        assert fingerprint(restored) == fingerprint(engine)
