"""Expected-value ordering: the adaptive dispatch and its runtime wiring.

Three layers of guarantees:

* completeness/correctness — :class:`ExpectedValueDispatch` labels every
  candidate pair with its true label, crowdsourcing only frontier pairs
  (never one the evidence so far already implies);
* optimality — on instances small enough for the exact DP
  (:func:`brute_force_adaptive_optimal`), the policy's exact expected cost
  (via :func:`adaptive_expected_cost`) *equals* the adaptive optimum, which
  in turn lower-bounds every static order; on a frozen reference instance
  it is strictly cheaper than the paper's likelihood-descending heuristic;
* parity — ``ordering="expected-value"`` on :class:`AsyncDispatch` /
  :class:`CrowdRuntime` consults the oracle in exactly the same order as
  the synchronous dispatch, and the spec round-trips the knob.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster_graph import ClusterGraph
from repro.core.expected_cost import (
    adaptive_expected_cost,
    brute_force_adaptive_optimal,
    expected_cost,
    posterior_match_probability,
)
from repro.core.oracle import GroundTruthOracle
from repro.core.ordering import expected_order
from repro.core.pairs import CandidatePair, Label, Pair, candidate
from repro.engine import AsyncDispatch, RuntimeMode
from repro.engine.expected import (
    ExpectedDeductionScorer,
    ExpectedValueDispatch,
    expected_value_choice,
)
from repro.spec import CampaignSpec

from ..strategies import worlds
from .reference import RecordingOracle

#: Frozen reference instance (seed-searched): the adaptive policy spends
#: strictly fewer expected questions than the static heuristic order here.
#: Also gated, with timings, in ``benchmarks/bench_core_micro.py``.
REFERENCE_GAP_CANDIDATES = [
    candidate("o0", "o3", 0.59),
    candidate("o1", "o3", 0.48),
    candidate("o2", "o3", 0.15),
    candidate("o1", "o2", 0.49),
    candidate("o0", "o2", 0.93),
]


@st.composite
def small_instances(draw, max_pairs: int = 5):
    """Worlds small enough for the exact adaptive DP, with likelihoods
    bounded away from 0/1 so every assignment keeps positive mass."""
    candidates, entity_of = draw(
        worlds(min_objects=3, max_objects=5, max_pairs=max_pairs)
    )
    bounded = [
        CandidatePair(c.pair, 0.05 + 0.9 * c.likelihood) for c in candidates
    ]
    return bounded, entity_of


class FrontierAssertingOracle:
    """Oracle wrapper that fails if a deducible pair is ever crowdsourced.

    Maintains a mirror deduction graph of the answers given out so far;
    deduced labels are implied by crowdsourced ones, so the mirror deduces
    exactly what the engine could have.
    """

    def __init__(self, truth: GroundTruthOracle) -> None:
        self._truth = truth
        self._graph = ClusterGraph()
        self.calls: list[Pair] = []

    def label(self, pair: Pair) -> Label:
        assert self._graph.deduce(pair) is None, (
            f"{pair!r} was crowdsourced but its label is already implied "
            "by earlier answers"
        )
        assert pair not in self.calls, f"{pair!r} was crowdsourced twice"
        self.calls.append(pair)
        label = self._truth.label(pair)
        self._graph.add(pair, label)
        return label


class TestExpectedValueDispatch:
    @given(worlds())
    @settings(max_examples=30, deadline=None)
    def test_labels_every_pair_correctly(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        result = ExpectedValueDispatch().run(candidates, truth)
        assert set(result.labels()) == {c.pair for c in candidates}
        for pair, label in result.labels().items():
            assert label is truth.label(pair)

    @given(worlds())
    @settings(max_examples=30, deadline=None)
    def test_only_frontier_pairs_are_crowdsourced(self, world):
        """Every oracle call is for a pair whose label was still open."""
        candidates, entity_of = world
        oracle = FrontierAssertingOracle(GroundTruthOracle(entity_of))
        result = ExpectedValueDispatch().run(candidates, oracle)
        assert result.n_crowdsourced == len(oracle.calls)
        assert result.n_crowdsourced + result.n_deduced == len(
            {c.pair for c in candidates}
        )

    def test_figure3_costs_at_most_the_optimum(self, figure3_candidates, figure3_truth):
        """Example 2's optimal static order crowdsources 6 pairs; the
        adaptive policy never needs more on the same world."""
        result = ExpectedValueDispatch().run(figure3_candidates, figure3_truth)
        assert result.n_crowdsourced <= 6
        assert result.n_deduced == 8 - result.n_crowdsourced


class TestAdaptiveOptimality:
    @given(small_instances())
    @settings(max_examples=6, deadline=None)
    def test_policy_cost_equals_the_adaptive_optimum(self, instance):
        """On DP-feasible instances the production policy IS the optimum:
        its exact expected cost matches the brute-force adaptive DP."""
        candidates, _ = instance
        if not candidates:
            return
        cost = adaptive_expected_cost(candidates, expected_value_choice)
        optimum = brute_force_adaptive_optimal(candidates)
        assert cost == pytest.approx(optimum, abs=1e-9)

    @given(small_instances())
    @settings(max_examples=6, deadline=None)
    def test_policy_never_beaten_by_the_static_heuristic(self, instance):
        candidates, _ = instance
        if not candidates:
            return
        cost = adaptive_expected_cost(candidates, expected_value_choice)
        heuristic = expected_cost(expected_order(candidates))
        assert cost <= heuristic + 1e-9

    def test_strictly_beats_heuristic_on_reference_instance(self):
        """The frozen reference: adaptivity buys ~0.17 expected questions."""
        candidates = REFERENCE_GAP_CANDIDATES
        cost = adaptive_expected_cost(candidates, expected_value_choice)
        heuristic = expected_cost(expected_order(candidates))
        assert cost == pytest.approx(3.4577, abs=0.005)
        assert heuristic == pytest.approx(3.6285, abs=0.005)
        assert cost < heuristic - 0.1


class TestScorerPosteriors:
    def test_scores_expose_the_exact_posterior(self):
        """Production posterior == spec-grade oracle.

        With evidence a-b non-matching and unresolved (a,c), (b,c), each
        score is exactly ``P(match | evidence) * 1`` (one deduction on
        merge), so the posterior can be read off and compared to
        :func:`posterior_match_probability`.
        """
        a_b, a_c, b_c = Pair("a", "b"), Pair("a", "c"), Pair("b", "c")
        candidates = [
            CandidatePair(a_b, 0.5),
            CandidatePair(a_c, 0.8),
            CandidatePair(b_c, 0.6),
        ]
        evidence = {a_b: Label.NON_MATCHING}
        scorer = ExpectedDeductionScorer()
        scorer.sync(evidence)
        unresolved = [CandidatePair(a_c, 0.8), CandidatePair(b_c, 0.6)]
        scored = dict(scorer.scores(unresolved))
        by_pair = {c.pair: score for c, score in scored.items()}
        for pair in (a_c, b_c):
            exact = posterior_match_probability(candidates, evidence, pair)
            assert by_pair[pair] == pytest.approx(exact, abs=1e-12)

    def test_oversized_component_falls_back_to_raw_likelihood(self):
        """Components past the enumeration limit score with the machine
        likelihood — documented approximation, not an error."""
        scorer = ExpectedDeductionScorer(enumeration_limit=1)
        scorer.observe(Pair("a", "b"), Label.NON_MATCHING)
        unresolved = [
            CandidatePair(Pair("a", "c"), 0.8),
            CandidatePair(Pair("b", "c"), 0.6),
        ]
        by_pair = {c.pair: s for c, s in scorer.scores(unresolved)}
        assert by_pair[Pair("a", "c")] == pytest.approx(0.8)
        assert by_pair[Pair("b", "c")] == pytest.approx(0.6)

    def test_choose_skips_deducible_and_returns_none_when_done(self):
        scorer = ExpectedDeductionScorer()
        scorer.observe(Pair("a", "b"), Label.MATCHING)
        scorer.observe(Pair("b", "c"), Label.MATCHING)
        deducible_only = [CandidatePair(Pair("a", "c"), 0.4)]
        assert scorer.choose(deducible_only) is None

    def test_rejects_non_positive_enumeration_limit(self):
        with pytest.raises(ValueError, match="enumeration_limit"):
            ExpectedDeductionScorer(enumeration_limit=0)


class TestRuntimeOrdering:
    @given(worlds())
    @settings(max_examples=20, deadline=None)
    def test_runtime_matches_sync_dispatch_exactly(self, world):
        """ordering="expected-value" over the FIFO simulated client asks
        the oracle the very same questions in the very same order."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        sync_oracle = RecordingOracle(truth)
        async_oracle = RecordingOracle(truth)
        reference = ExpectedValueDispatch().run(candidates, sync_oracle)
        result = AsyncDispatch(
            RuntimeMode.SEQUENTIAL, ordering="expected-value"
        ).run(candidates, async_oracle)
        assert result.labels() == reference.labels()
        assert result.n_crowdsourced == reference.n_crowdsourced
        assert async_oracle.calls == sync_oracle.calls

    def test_spec_ordering_reaches_the_runtime(self, figure3_candidates, figure3_truth):
        spec = CampaignSpec(
            order=figure3_candidates, mode="sequential", ordering="expected-value"
        )
        result = AsyncDispatch(spec=spec).run(figure3_candidates, figure3_truth)
        assert result.n_crowdsourced <= 6
        assert set(result.labels()) == {c.pair for c in figure3_candidates}

    @pytest.mark.parametrize(
        "mode", [RuntimeMode.ROUNDS, RuntimeMode.HIT_INSTANT, RuntimeMode.FLOOD]
    )
    def test_expected_value_requires_sequential_mode(self, mode):
        with pytest.raises(ValueError, match="SEQUENTIAL"):
            AsyncDispatch(mode, ordering="expected-value")

    def test_unknown_ordering_rejected(self):
        with pytest.raises(ValueError):
            AsyncDispatch(RuntimeMode.SEQUENTIAL, ordering="telepathic")
