"""The distributed backend: differential, chaos, and protocol suites.

``backend="distributed"`` runs the PR-4 shard command protocol over real TCP
sockets (``src/repro/engine/distributed.py``); these tests make its failure
contract trustworthy:

* **differential** — the socket transport must be invisible: parity with the
  frozen PR-1 references under FIFO, shuffled, and expiring clients (the
  strategy × backend matrix in ``test_backend_matrix.py`` adds the full
  grid), plus worker-count 1-vs-N equality at *every* frontier;
* **chaos** — injected faults (dropped connections, a handler stalled past
  the heartbeat timeout, real SIGKILL of a worker host) must recover via
  component re-assignment to a ``state_fingerprint()`` byte-identical to the
  fault-free run, across sequential and hit-rounds runtime modes; shutdown
  must never hang; losing *every* worker must poison with the PR-4
  :class:`ShardWorkerError` contract;
* **protocol** — framing round-trips arbitrary JSON through torn reads,
  rejects oversized frames before allocating, and snapshot re-ship +
  event-log replay converges from any prefix (the reconnect property).

Every receive on the coordinator is liveness-checked (EOF, heartbeat
silence, reply deadline), so none of these tests need an external watchdog;
CI's ``pytest-timeout`` backstop is belt-and-braces only.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.cluster_graph import ConflictPolicy, InconsistentLabelError
from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.crowd.clients import SimulatedPlatformClient
from repro.engine import (
    AsyncDispatch,
    CrowdRuntime,
    FrameDecoder,
    LabelingEngine,
    ProtocolError,
    RoundParallelDispatch,
    RuntimeMode,
    ShardCoordinator,
    ShardWorkerError,
    ShardWorkerHost,
    encode_frame,
)
from repro.engine.distributed import _WorkerSession, _parse_address

from ..aio import background_loop
from ..strategies import worlds
from .reference import (
    RecordingOracle,
    block_world,
    expiring_client_factory,
    reference_parallel,
    shuffled_client_factory,
)

DISTRIBUTED = dict(backend="distributed", spawn_local_workers=2)


# ----------------------------------------------------------------------
# shared drivers
# ----------------------------------------------------------------------
def fingerprint(engine: LabelingEngine) -> str:
    """The byte-identity the chaos differentials assert on."""
    return json.dumps(engine.state_fingerprint(), sort_keys=True)


def run_engine_campaign(mode, order, oracle, *, n_workers=3, fault=None):
    """One full campaign on ``backend="distributed"``.

    ``fault`` is a callable ``coordinator -> fault_hook`` installed on the
    coordinator's transport before the runtime starts.  Returns the
    fingerprint, the coordinator (closed), and the installed hook.
    """
    engine = LabelingEngine(
        order, backend="distributed", spawn_local_workers=n_workers
    )
    coordinator = engine._executor
    hook = None
    if fault is not None:
        hook = fault(coordinator)
        coordinator._fault_hook = hook
    try:
        CrowdRuntime(
            engine,
            SimulatedPlatformClient.for_oracle(oracle, batch_size=4),
            mode=mode,
        ).run_sync()
        return fingerprint(engine), coordinator, hook
    finally:
        engine.close()


class KillWorkerAt:
    """SIGKILL the first live worker host at the Nth command frame."""

    def __init__(self, coordinator: ShardCoordinator, at: int) -> None:
        self.coordinator = coordinator
        self.at = at
        self.count = 0
        self.fired = False

    def __call__(self, worker_id: int, command: str) -> None:
        self.count += 1
        if not self.fired and self.count >= self.at:
            self.fired = True
            os.kill(self.coordinator.worker_pids()[0], signal.SIGKILL)


class DropConnectionAt:
    """Sever the first live worker's TCP connection at the Nth command."""

    def __init__(self, coordinator: ShardCoordinator, at: int) -> None:
        self.coordinator = coordinator
        self.at = at
        self.count = 0
        self.fired = False

    def __call__(self, worker_id: int, command: str) -> None:
        self.count += 1
        if not self.fired and self.count >= self.at:
            self.fired = True
            self.coordinator.drop_connection(
                self.coordinator.live_worker_ids()[0]
            )


class SleepOnFirstSweep:
    """Worker-side hook: worker 0 stalls its first sweep past the
    coordinator's heartbeat timeout (the hung-worker model — a busy handler
    starves its own session's heartbeat)."""

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        self.fired = False

    def __call__(self, worker_id, command: str) -> None:
        if worker_id == 0 and command == "sweep" and not self.fired:
            self.fired = True
            time.sleep(self.seconds)


def drive_lockstep(coordinators, oracle, order):
    """Drive several coordinators through identical publish/answer/sweep
    rounds, asserting observable equality at every step.  Returns the
    per-round frontiers of the first coordinator."""
    rounds = []
    frontiers = [c.frontier() for c in coordinators]
    for other in frontiers[1:]:
        assert other == frontiers[0]
    while frontiers[0]:
        rounds.append(frontiers[0])
        for coordinator in coordinators:
            coordinator.publish(frontiers[0], withhold=False)
        for pair in frontiers[0]:
            label = oracle.label(pair)
            applied = [c.record_answer(pair, label) for c in coordinators]
            assert applied == [applied[0]] * len(coordinators)
        sweeps = [c.sweep() for c in coordinators]
        for other in sweeps[1:]:
            assert other == sweeps[0]
        stats = [c.stats() for c in coordinators]
        for other in stats[1:]:
            assert other == stats[0]
        for coordinator in coordinators:
            coordinator.check_invariants()
        frontiers = [c.frontier() for c in coordinators]
        for other in frontiers[1:]:
            assert other == frontiers[0]
    clusters = [
        sorted(sorted(cluster, key=repr) for cluster in c.clusters())
        for c in coordinators
    ]
    for other in clusters[1:]:
        assert other == clusters[0]
    return rounds


# ----------------------------------------------------------------------
# differential suite: the socket transport must be invisible
# ----------------------------------------------------------------------
class TestDifferentialParity:
    @given(worlds())
    @settings(max_examples=5, deadline=None)
    def test_rounds_parity_under_shuffled_completions(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_parallel(candidates, truth)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            client_factory=shuffled_client_factory(seed=3),
            **DISTRIBUTED,
        )
        result = dispatch.run(candidates, truth)
        assert result.labels() == reference.labels()
        assert result.rounds == reference.rounds
        assert result.n_crowdsourced == reference.n_crowdsourced
        assert result.n_deduced == reference.n_deduced

    @given(worlds())
    @settings(max_examples=5, deadline=None)
    def test_parity_under_expiry_and_reissue(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_parallel(candidates, truth)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            client_factory=expiring_client_factory(seed=5),
            **DISTRIBUTED,
        )
        result = dispatch.run(candidates, truth)
        assert result.labels() == reference.labels()
        assert result.rounds == reference.rounds

    def test_oracle_call_order_matches_reference(self):
        order, truth = block_world(n_blocks=4, objects_per_block=4)
        ref_oracle = RecordingOracle(truth)
        new_oracle = RecordingOracle(truth)
        reference = reference_parallel(order, ref_oracle)
        result = RoundParallelDispatch(**DISTRIBUTED).run(order, new_oracle)
        assert result.outcomes == reference.outcomes
        assert new_oracle.calls == ref_oracle.calls

    def test_one_vs_many_workers_agree_at_every_frontier(self):
        """The component partition must be invisible: 1 worker and 3 workers
        produce identical frontiers, sweeps, stats, and clusters at every
        round of the same campaign."""
        order, truth = block_world(n_blocks=5, objects_per_block=4)
        with ShardCoordinator(order, spawn_local_workers=1) as solo:
            with ShardCoordinator(order, spawn_local_workers=3) as trio:
                assert solo.n_workers == 1
                assert trio.n_workers == 3
                rounds = drive_lockstep([solo, trio], truth, order)
        assert len(rounds) >= 2, "world too small to exercise rounds"

    def test_worker_count_capped_at_components(self):
        order, _ = block_world(n_blocks=2, objects_per_block=3)
        with ShardCoordinator(order, spawn_local_workers=5) as coordinator:
            assert coordinator.n_workers == 2
            assert coordinator.live_worker_ids() == [0, 1]
            assert len(coordinator.worker_pids()) == 2

    def test_non_scalar_object_ids_rejected(self):
        with pytest.raises(TypeError, match="scalar"):
            ShardCoordinator([Pair(("a", 1), ("b", 2))], spawn_local_workers=1)

    def test_strict_conflict_ships_inconsistent_label_error(self):
        order = [Pair("a", "b"), Pair("b", "c"), Pair("a", "c")]
        with ShardCoordinator(order, spawn_local_workers=1) as coordinator:
            coordinator.publish(order, withhold=False)
            assert coordinator.record_answer(order[0], Label.MATCHING)
            assert coordinator.record_answer(order[1], Label.MATCHING)
            with pytest.raises(InconsistentLabelError):
                coordinator.record_answer(order[2], Label.NON_MATCHING)


# ----------------------------------------------------------------------
# remote workers: pre-started hosts instead of spawned children
# ----------------------------------------------------------------------
class TestRemoteWorkers:
    def test_two_coordinators_share_one_host(self):
        """Sessions are per-connection: two coordinators pointed at the same
        `workers=` address stay fully independent."""
        with background_loop() as loop:
            host = ShardWorkerHost("127.0.0.1", 0)
            ready = threading.Event()
            ports = []

            def on_ready(port: int) -> None:
                ports.append(port)
                ready.set()

            serving = loop.submit(host.serve(ready_callback=on_ready))
            assert ready.wait(10), "worker host did not bind"
            address = f"127.0.0.1:{ports[0]}"
            order, truth = block_world(n_blocks=3, objects_per_block=3)
            with ShardCoordinator(order, workers=[address]) as first:
                with ShardCoordinator(order, workers=[address]) as second:
                    assert first.worker_pids() == [os.getpid()]
                    drive_lockstep([first, second], truth, order)
            serving.cancel()

    def test_runbook_cli_worker(self, tmp_path):
        """The documented deployment path: ``python -m
        repro.engine.distributed --worker host:port`` starts a host a
        coordinator can attach to."""
        src = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(src, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.engine.distributed",
             "--worker", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "shard worker listening on" in line
            address = line.rsplit(" ", 1)[-1].strip()
            order, truth = block_world(n_blocks=2, objects_per_block=3)
            with ShardCoordinator(order, workers=[address]) as coordinator:
                drive_lockstep([coordinator], truth, order)
        finally:
            process.terminate()
            process.wait(timeout=10)

    def test_parse_address(self):
        assert _parse_address("host:9000") == ("host", 9000)
        assert _parse_address("[::1]:9000") == ("::1", 9000)
        assert _parse_address(":9000") == ("127.0.0.1", 9000)
        with pytest.raises(ValueError):
            _parse_address("no-port")
        with pytest.raises(ValueError):
            _parse_address("host:not-a-number")


# ----------------------------------------------------------------------
# chaos: worker loss must be invisible to the campaign
# ----------------------------------------------------------------------
class TestChaosRecovery:
    MODES = (RuntimeMode.SEQUENTIAL, RuntimeMode.HIT_ROUNDS)

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    @pytest.mark.parametrize("kill_at", (1, 7, 33))
    def test_sigkill_recovers_byte_identical(self, mode, kill_at):
        """The acceptance criterion: a real SIGKILL mid-campaign recovers
        via re-assignment to a byte-identical ``state_fingerprint()``."""
        order, truth = block_world(n_blocks=6, objects_per_block=4)
        clean, _, _ = run_engine_campaign(mode, order, truth)
        got, coordinator, hook = run_engine_campaign(
            mode, order, truth,
            fault=lambda c: KillWorkerAt(c, kill_at),
        )
        assert hook.fired, "kill point beyond the campaign's command count"
        assert got == clean
        assert len(coordinator.reassignments) == 1
        record = coordinator.reassignments[0]
        assert record["moved_components"] >= 1
        assert record["targets"], "components must land on survivors"
        assert len(coordinator.live_worker_ids()) == 2

    @pytest.mark.parametrize("drop_at", (1, 12, 40))
    def test_dropped_connection_recovers_byte_identical(self, drop_at):
        order, truth = block_world(n_blocks=6, objects_per_block=4)
        clean, _, _ = run_engine_campaign(RuntimeMode.ROUNDS, order, truth)
        got, coordinator, hook = run_engine_campaign(
            RuntimeMode.ROUNDS, order, truth,
            fault=lambda c: DropConnectionAt(c, drop_at),
        )
        assert hook.fired
        assert got == clean
        assert len(coordinator.reassignments) == 1

    def test_handler_stalled_past_heartbeat_is_declared_dead(self):
        """A worker that stops heartbeating (here: a handler sleeping well
        past the timeout) is treated exactly like a crashed one."""
        order, truth = block_world(n_blocks=4, objects_per_block=4)
        with ShardCoordinator(order, spawn_local_workers=2) as clean:
            clean_rounds = drive_lockstep([clean], truth, order)
            clean_stats = clean.stats()
        with ShardCoordinator(
            order,
            spawn_local_workers=2,
            worker_fault_hook=SleepOnFirstSweep(6.0),
            heartbeat_interval=0.1,
            heartbeat_timeout=0.8,
        ) as coordinator:
            rounds = drive_lockstep([coordinator], truth, order)
            assert rounds == clean_rounds
            assert coordinator.stats() == clean_stats
            assert len(coordinator.reassignments) == 1
            assert "no heartbeat" in coordinator.reassignments[0]["reason"]
            assert coordinator.live_worker_ids() == [1]

    def test_consecutive_losses_until_one_survivor(self):
        """Losing workers one at a time keeps converging while anyone
        survives."""
        order, truth = block_world(n_blocks=6, objects_per_block=4)
        with ShardCoordinator(order, spawn_local_workers=1) as reference:
            clean_rounds = drive_lockstep([reference], truth, order)
        engine = LabelingEngine(order, backend="distributed", spawn_local_workers=3)
        coordinator = engine._executor
        try:
            frontier = coordinator.frontier()
            rounds = []
            losses = 0
            while frontier:
                rounds.append(frontier)
                coordinator.publish(frontier, withhold=False)
                for pair in frontier:
                    coordinator.record_answer(pair, truth.label(pair))
                if losses < 2:
                    losses += 1
                    os.kill(coordinator.worker_pids()[0], signal.SIGKILL)
                coordinator.sweep()
                frontier = coordinator.frontier()
            assert rounds == clean_rounds
            assert len(coordinator.reassignments) == 2
            assert len(coordinator.live_worker_ids()) == 1
        finally:
            engine.close()

    def test_all_workers_lost_poisons_with_shard_worker_error(self):
        """The PR-4 contract survives: zero survivors is unrecoverable."""
        order, truth = block_world(n_blocks=1, objects_per_block=4)
        with ShardCoordinator(order, spawn_local_workers=1) as coordinator:
            assert coordinator.n_workers == 1
            os.kill(coordinator.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(ShardWorkerError, match="no shard workers survive"):
                coordinator.publish(order, withhold=False)
            # Poisoned for good, like the pipe executor.
            with pytest.raises(ShardWorkerError):
                coordinator.stats()

    def test_shutdown_never_hangs(self):
        """close() with every worker SIGKILLed (stop frames go nowhere,
        children need reaping) still returns promptly."""
        order, _ = block_world(n_blocks=4, objects_per_block=4)
        coordinator = ShardCoordinator(order, spawn_local_workers=2)
        for pid in coordinator.worker_pids():
            os.kill(pid, signal.SIGKILL)
        started = time.monotonic()
        coordinator.close()
        assert time.monotonic() - started < 10.0
        assert coordinator.closed
        coordinator.close()  # idempotent
        with pytest.raises(ShardWorkerError, match="closed"):
            coordinator.frontier()


# ----------------------------------------------------------------------
# protocol: framing and the replay/reconnect convergence property
# ----------------------------------------------------------------------
JSON_VALUES = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


#: Wire messages are always JSON arrays (enforced by the framing layer —
#: it keeps the decoder's ``None``/"need more bytes" unambiguous).
WIRE_MESSAGES = st.lists(JSON_VALUES, max_size=4)


class TestFraming:
    @given(messages=st.lists(WIRE_MESSAGES, min_size=1, max_size=5), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_through_torn_reads(self, messages, data):
        """Any frame sequence survives arbitrary re-chunking of the byte
        stream (TCP tears at any boundary)."""
        blob = b"".join(encode_frame(message) for message in messages)
        decoder = FrameDecoder()
        decoded = []
        offset = 0
        while offset < len(blob):
            step = data.draw(
                st.integers(1, max(1, min(7, len(blob) - offset))), label="chunk"
            )
            decoder.feed(blob[offset : offset + step])
            offset += step
            while True:
                frame = decoder.next_frame()
                if frame is None:
                    break
                decoded.append(frame)
        assert decoded == messages

    def test_incomplete_frames_wait_for_bytes(self):
        frame = encode_frame(["sweep", 7])
        decoder = FrameDecoder()
        decoder.feed(frame[:3])
        assert decoder.next_frame() is None  # torn length prefix
        decoder.feed(frame[3:-1])
        assert decoder.next_frame() is None  # torn body
        decoder.feed(frame[-1:])
        assert decoder.next_frame() == ["sweep", 7]
        assert decoder.next_frame() is None  # drained

    def test_oversized_outgoing_frame_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(["x" * 100], max_frame_bytes=16)

    def test_non_array_messages_rejected_both_ways(self):
        """Top-level null/scalars are banned on the wire: a ``null`` body
        would collide with the decoder's "need more bytes" None."""
        with pytest.raises(ProtocolError, match="arrays"):
            encode_frame(None)
        with pytest.raises(ProtocolError, match="arrays"):
            encode_frame({"not": "an array"})
        import struct

        body = b"null"
        decoder = FrameDecoder()
        decoder.feed(struct.pack("!I", len(body)) + body)
        with pytest.raises(ProtocolError, match="arrays"):
            decoder.next_frame()

    def test_oversized_incoming_prefix_rejected_before_body(self):
        """A hostile/corrupt length prefix must fail fast, not allocate."""
        import struct

        decoder = FrameDecoder(max_frame_bytes=1024)
        decoder.feed(struct.pack("!I", 1 << 30))
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.next_frame()


def session_digest(session: _WorkerSession):
    """Everything a worker session can observably report."""
    return (
        session.stats(),
        sorted(tuple(cluster) for cluster in session.clusters()),
        session.sweep(),
        session.frontier(),
    )


def campaign_bundle(order, truth):
    """(bundle, events): a finished campaign's authoritative snapshot, as a
    recovery re-ship would carry it."""
    with ShardCoordinator(order, spawn_local_workers=1) as coordinator:
        drive_lockstep([coordinator], truth, order)
        return coordinator._encode_bundle(list(coordinator._entries_of_root))


class TestReplayConvergence:
    def test_reship_is_deterministic(self):
        """Identical (bundle, events) loaded anywhere produce identical
        state — a re-shipped component cannot depend on which worker it
        lands on."""
        order, truth = block_world(n_blocks=3, objects_per_block=4)
        bundle, events = campaign_bundle(order, truth)
        first, second = _WorkerSession(), _WorkerSession()
        assert first.load(bundle, "strict", events) == len(order)
        assert second.load(bundle, "strict", events) == len(order)
        assert session_digest(first) == session_digest(second)

    def test_replaying_any_prefix_converges(self):
        """The reconnect property: a worker loaded with any committed-log
        prefix, then fed the remaining events as live commands, converges to
        the full-replay state.  This is exactly the window a worker death
        leaves — events committed only after acknowledgement, the in-flight
        command replayed on the new owner."""
        order, truth = block_world(n_blocks=3, objects_per_block=4)
        bundle, events = campaign_bundle(order, truth)
        assert len(events) >= 10, "world too small to exercise replay"
        full = _WorkerSession()
        full.load(bundle, "strict", events)
        reference = session_digest(full)
        for cut in range(len(events) + 1):
            session = _WorkerSession()
            session.load(bundle, "strict", events[:cut])
            for event in events[cut:]:
                kind = event[0]
                if kind == "a":
                    session.answer(event[1], event[2])
                elif kind == "d":
                    session.deduced(event[1], event[2])
                elif kind == "p":
                    session.publish(event[1], event[2])
                else:
                    assert kind == "w"
                    session.withhold(event[1])
            assert session_digest(session) == reference, f"diverged at {cut}"

    def test_answers_are_idempotent_by_position_and_label(self):
        """A retried in-flight answer (applied but unacknowledged before the
        death) leaves the partition, pending deductions, and frontier
        unchanged — the exactly-once guarantee the commit-after-ack log
        relies on."""
        order, truth = block_world(n_blocks=2, objects_per_block=3)
        bundle, _ = campaign_bundle(order, truth)
        session = _WorkerSession()
        session.load(bundle, "strict", [])
        session.publish(list(range(len(order))), False)
        applied, conflict = session.answer(0, 1)
        assert applied and conflict is None
        session.sweep()  # drain the first application's deductions
        clusters = sorted(tuple(cluster) for cluster in session.clusters())
        frontier = session.frontier()
        applied_again, conflict = session.answer(0, 1)  # the replay
        assert applied_again and conflict is None  # consistent, not a conflict
        assert session.sweep() == []  # nothing newly resolved
        assert sorted(tuple(c) for c in session.clusters()) == clusters
        reply = session.frontier()
        assert reply == "same" or reply == frontier
