"""Differential tests for the process-parallel shard executor.

``backend="parallel"`` must be *observationally identical* to the in-process
backends and to the frozen PR-1 references — labeling-order sensitivity
(Wang et al., "The Expected Optimal Labeling Order Problem") means any
divergence in what a frontier selects or when a deduction lands silently
changes what the crowd is asked.  These tests pin the executor on seeded
random answer streams, including:

* shuffled completion orders and injected expiry + re-issue through the
  async runtime (answers reach the workers out of publication order);
* forced merge storms — all-positive answer streams that collapse every
  answer-graph shard inside a worker through the lazy ``absorb`` seam;
* worker-count equivalence: 1 worker vs N workers vs the in-process
  backends, at every intermediate frontier;
* spawn-safety: the executor works under the ``spawn`` start method (the
  default is ``fork`` where available, for zero-copy snapshots).

Crash safety is covered via the executor's injectable ``fault_hook``: a
worker process that dies mid-command must surface a :class:`ShardWorkerError`
naming the worker, exit code, and command — never hang — and poison the
executor for further use.  The async runtime must propagate that error out
of a live campaign.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.engine import (
    AsyncDispatch,
    CrowdRuntime,
    LabelingEngine,
    ProcessShardExecutor,
    RoundParallelDispatch,
    RuntimeMode,
    ShardWorkerError,
    must_crowdsource_frontier,
)
from repro.crowd.clients import SimulatedPlatformClient

from ..aio import run_async
from ..strategies import worlds
from .reference import (
    block_world,
    expiring_client_factory,
    reference_parallel,
    shuffled_client_factory,
)

PARALLEL = dict(backend="parallel", parallel_threshold=0)


# ----------------------------------------------------------------------
# differential property tests vs the frozen references
# ----------------------------------------------------------------------
class TestShuffledCompletionOrders:
    """Out-of-order answer arrival must not change anything observable."""

    @pytest.mark.parametrize("seed", (1, 3))
    @given(worlds())
    @settings(max_examples=8, deadline=None)
    def test_rounds_parity_under_shuffled_completions(self, seed, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_parallel(candidates, truth)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            n_workers=2,
            client_factory=shuffled_client_factory(seed),
            **PARALLEL,
        )
        result = dispatch.run(candidates, truth)
        assert result.labels() == reference.labels()
        assert result.rounds == reference.rounds
        assert result.n_crowdsourced == reference.n_crowdsourced
        assert result.n_deduced == reference.n_deduced

    @given(worlds())
    @settings(max_examples=8, deadline=None)
    def test_parity_under_expiry_and_reissue(self, world):
        """Abandoned HITs are re-issued until answered; the parallel engine
        must absorb the duplicate/late deliveries exactly like the others."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_parallel(candidates, truth)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            n_workers=2,
            client_factory=expiring_client_factory(seed=5),
            **PARALLEL,
        )
        result = dispatch.run(candidates, truth)
        assert result.labels() == reference.labels()
        assert result.rounds == reference.rounds
        assert result.n_crowdsourced == reference.n_crowdsourced


class TestWorkerCountEquivalence:
    """1 worker vs N workers vs the in-process sharded backend, checked at
    every intermediate frontier of a round-parallel drive."""

    @given(worlds(), st.sampled_from((1, 3)))
    @settings(max_examples=10, deadline=None)
    def test_frontiers_identical_at_every_round(self, world, n_workers):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        inproc = LabelingEngine(candidates, backend="sharded")
        with LabelingEngine(candidates, n_workers=n_workers, **PARALLEL) as par:
            assert par.backend == "parallel"
            round_index = 0
            while not inproc.is_done:
                batch_ref = inproc.frontier()
                batch_par = par.frontier()
                assert batch_par == batch_ref
                for engine in (inproc, par):
                    engine.publish(batch_ref)
                    for pair in batch_ref:
                        engine.record_answer(pair, truth.label(pair), round_index)
                    swept = engine.sweep(round_index)
                    if engine is par:
                        assert swept == swept_ref
                    else:
                        swept_ref = swept
                round_index += 1
            assert par.is_done
            assert par.labeled == inproc.labeled
            par.graph.check_invariants()

    @given(worlds())
    @settings(max_examples=8, deadline=None)
    def test_one_vs_many_workers_full_run(self, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        one = RoundParallelDispatch(n_workers=1, **PARALLEL).run(candidates, truth)
        many = RoundParallelDispatch(n_workers=3, **PARALLEL).run(candidates, truth)
        assert one.outcomes == many.outcomes
        assert one.rounds == many.rounds


class TestMergeStorms:
    """All-positive streams force every answer-graph shard to merge through
    the lazy ``absorb`` seam inside its worker."""

    def test_chain_collapses_to_one_shard_per_component(self):
        order, _ = block_world(n_blocks=6, objects_per_block=6)
        # Make every block a single entity: all answers positive.
        objects = {obj for pair in order for obj in pair}
        all_match = GroundTruthOracle({obj: obj.split("o")[0] for obj in objects})
        with LabelingEngine(order, n_workers=3, **PARALLEL) as par:
            reference = LabelingEngine(order, backend="monolithic")
            round_index = 0
            while not reference.is_done:
                batch = reference.frontier()
                assert par.frontier() == batch
                for engine in (reference, par):
                    engine.publish(batch)
                    for pair in batch:
                        engine.record_answer(pair, all_match.label(pair), round_index)
                    engine.sweep(round_index)
                round_index += 1
            assert par.labeled == reference.labeled
            stats = par.executor.stats()
            # Every block collapsed into one cluster in one shard.
            assert stats["n_shards"] == 6
            assert stats["n_clusters"] == 6
            par.graph.check_invariants()

    @given(st.randoms(use_true_random=False))
    @settings(max_examples=10, deadline=None)
    def test_random_spanning_storm_matches_monolithic(self, rnd):
        """Random spanning-tree orders over one giant component: answers
        keep bridging shards until a single shard remains."""
        n = 24
        order = [Pair(i, rnd.randrange(i)) for i in range(1, n)]
        rnd.shuffle(order)
        truth = GroundTruthOracle({i: 0 for i in range(n)})
        reference = reference_parallel(order, truth)
        result = RoundParallelDispatch(n_workers=2, **PARALLEL).run(order, truth)
        assert result.outcomes == reference.outcomes
        assert result.rounds == reference.rounds


class TestSpawnSafety:
    def test_full_run_under_spawn_start_method(self):
        order, truth = block_world(n_blocks=4, objects_per_block=4)
        with LabelingEngine(
            order, n_workers=2, mp_start_method="spawn", **PARALLEL
        ) as engine:
            assert engine.executor.start_method == "spawn"
            round_index = 0
            while not engine.is_done:
                batch = engine.frontier()
                assert batch
                engine.publish(batch)
                for pair in batch:
                    engine.record_answer(pair, truth.label(pair), round_index)
                engine.sweep(round_index)
                round_index += 1
            for pair in order:
                assert engine.labeled[pair] is truth.label(pair)


# ----------------------------------------------------------------------
# executor-level behaviour
# ----------------------------------------------------------------------
class TestExecutorDirect:
    def test_frontier_matches_reference_scan_through_publish_churn(self):
        order, truth = block_world()
        with ProcessShardExecutor(order, n_workers=3) as executor:
            labeled = {}
            published = set()
            for step, pair in enumerate(order):
                expected = must_crowdsource_frontier(order, labeled, exclude=published)
                assert executor.frontier() == expected
                if step % 3 == 0:
                    published.add(pair)
                    executor.publish([pair], withhold=True)
                else:
                    labeled[pair] = truth.label(pair)
                    published.discard(pair)
                    executor.record_answer(pair, labeled[pair])

    def test_component_assignment_is_balanced_and_deterministic(self):
        order, _ = block_world(n_blocks=9, objects_per_block=4)
        a = ProcessShardExecutor(order, n_workers=3)
        b = ProcessShardExecutor(order, n_workers=3)
        try:
            assert a.n_components == 9
            assert a.n_workers == 3
            sizes = sorted(handle.n_pairs for handle in a._handles)
            assert sizes == sorted(handle.n_pairs for handle in b._handles)
            assert max(sizes) - min(sizes) <= 6  # one component of slack
            assert a._worker_of_root == b._worker_of_root
        finally:
            a.close()
            b.close()

    def test_worker_cap_and_foreign_pairs(self):
        order, _ = block_world(n_blocks=2, objects_per_block=3)
        with ProcessShardExecutor(order, n_workers=8) as executor:
            assert executor.n_workers == 2  # never more workers than components
            with pytest.raises(ValueError, match="not in the labeling order"):
                executor.record_answer(Pair("x", "y"), Label.MATCHING)

    def test_cross_component_deduce_short_circuits(self):
        order, truth = block_world(n_blocks=2, objects_per_block=3)
        with ProcessShardExecutor(order, n_workers=2) as executor:
            for pair in order:
                executor.record_answer(pair, truth.label(pair))
            # Objects in different static components: no path can connect
            # them, answered without touching any worker.
            assert executor.deduce(Pair("b0o0", "b1o0")) is None
            assert executor.deduce(order[0]) is truth.label(order[0])

    def test_close_is_idempotent_and_reaps_workers(self):
        order, _ = block_world(n_blocks=2, objects_per_block=3)
        executor = ProcessShardExecutor(order, n_workers=2)
        pids = executor.worker_pids()
        assert executor.frontier()  # workers are alive and serving
        executor.close()
        executor.close()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        with pytest.raises(ShardWorkerError, match="closed"):
            executor.frontier()


# ----------------------------------------------------------------------
# crash safety
# ----------------------------------------------------------------------
def die_on_sweep(worker_id: int, command: str) -> None:
    if command == "sweep":
        os._exit(3)


def die_on_frontier(worker_id: int, command: str) -> None:
    if command == "frontier":
        os._exit(5)


def raise_on_worker0_sweep(worker_id: int, command: str) -> None:
    if command == "sweep" and worker_id == 0:
        raise RuntimeError("injected handler failure")


class TestCrashSafety:
    def test_worker_death_mid_sweep_raises_not_hangs(self):
        order, truth = block_world()
        with ProcessShardExecutor(order, n_workers=2, fault_hook=die_on_sweep) as ex:
            batch = ex.frontier()
            ex.publish(batch, withhold=True)
            ex.record_answer(batch[0], truth.label(batch[0]))
            with pytest.raises(ShardWorkerError) as excinfo:
                ex.sweep()
            message = str(excinfo.value)
            assert "died with exit code 3" in message
            assert "'sweep'" in message
            assert "shard worker" in message
            # The executor is poisoned: its shard state is gone.
            with pytest.raises(ShardWorkerError):
                ex.frontier()

    def test_handler_exception_does_not_desync_the_protocol(self):
        """A worker handler that *raises* (rather than dies) re-raises in
        the parent with every sibling reply consumed: the executor stays
        usable and later broadcasts still line up with their replies."""
        order, truth = block_world(n_blocks=4, objects_per_block=4)
        with ProcessShardExecutor(
            order, n_workers=2, fault_hook=raise_on_worker0_sweep
        ) as ex:
            expected = must_crowdsource_frontier(order, {})
            assert ex.frontier() == expected
            with pytest.raises(RuntimeError, match="injected handler failure"):
                ex.sweep()
            # Not a worker death: state is intact, the protocol in sync.
            assert ex.frontier() == expected
            ex.record_answer(order[0], truth.label(order[0]))
            assert ex.frontier() == must_crowdsource_frontier(
                order, {order[0]: truth.label(order[0])}
            )

    def test_worker_death_mid_frontier_raises(self):
        order, _ = block_world(n_blocks=3, objects_per_block=3)
        with ProcessShardExecutor(order, n_workers=3, fault_hook=die_on_frontier) as ex:
            with pytest.raises(ShardWorkerError, match="exit code 5"):
                ex.frontier()

    def test_runtime_surfaces_worker_death_from_live_campaign(self):
        """A campaign over the async runtime must propagate the crash as a
        clear error instead of stalling the event loop."""
        order, truth = block_world(n_blocks=3, objects_per_block=4)
        engine = LabelingEngine(order, n_workers=2, **PARALLEL)
        for pid in engine.executor.worker_pids():
            os.kill(pid, 9)
        runtime = CrowdRuntime(
            engine,
            SimulatedPlatformClient.for_oracle(truth),
            mode=RuntimeMode.ROUNDS,
        )
        with pytest.raises(ShardWorkerError, match="died"):
            run_async(runtime.run())
        assert engine.executor.closed  # the runtime still released the pool

    def test_engine_close_after_crash_is_clean(self):
        order, truth = block_world(n_blocks=2, objects_per_block=3)
        engine = LabelingEngine(order, n_workers=2, **PARALLEL)
        for pid in engine.executor.worker_pids():
            os.kill(pid, 9)
        with pytest.raises(ShardWorkerError):
            engine.frontier()
        engine.close()  # no raise, no hang
        assert engine.executor.closed


class TestBackendRegistration:
    def test_auto_fallback_below_threshold(self):
        order, _ = block_world(n_blocks=2, objects_per_block=3)
        engine = LabelingEngine(order, backend="parallel")  # default threshold
        assert engine.backend == "sharded"  # fell back: order is tiny
        assert engine.executor is None
        forced = LabelingEngine(order, backend="parallel", parallel_threshold=0)
        try:
            assert forced.backend == "parallel"
            assert forced.executor is not None
        finally:
            forced.close()

    def test_explicit_graph_rejected(self):
        from repro.core.cluster_graph import ClusterGraph

        with pytest.raises(ValueError, match="parallel"):
            LabelingEngine(
                [Pair("a", "b")],
                graph=ClusterGraph(),
                backend="parallel",
                parallel_threshold=0,
            )

    def test_result_readable_after_close(self):
        order, truth = block_world(n_blocks=2, objects_per_block=3)
        dispatch = AsyncDispatch(RuntimeMode.ROUNDS, n_workers=2, **PARALLEL)
        result = dispatch.run(order, truth)  # runtime closes the pool
        for pair in order:
            assert result.label_of(pair) is truth.label(pair)
