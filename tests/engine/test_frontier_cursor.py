"""The incremental frontier: FrontierCursor must replicate the full
Algorithm-3 scan exactly, and the checkpoint/rollback machinery it rests on
must restore UnionFind and OptimisticGraph state bit-perfectly.

The cursor is the fix for the ROADMAP's "incremental frontier selection"
item: ``must_crowdsource_frontier`` rescans the whole order per publish
decision (O(P) per call); the cursor folds the decided prefix into a
persistent optimistic graph once and re-scans only the suffix, so
instant-decision re-publishes skip already-decided positions.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.core.union_find import UnionFind
from repro.engine.frontier import (
    FrontierCursor,
    OptimisticGraph,
    must_crowdsource_frontier,
)

from ..strategies import worlds
from .reference import reference_parallel_selection


class TestUnionFindRollback:
    @given(
        st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=30),
        st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_rollback_restores_components(self, base_edges, speculative_edges):
        uf = UnionFind()
        for a, b in base_edges:
            uf.union(a, b)
        before = {e: uf.find(e) for e in uf}
        n_before = uf.n_components
        uf.checkpoint()
        for a, b in speculative_edges:
            uf.union(a, b)
        uf.rollback()
        assert uf.n_components == n_before
        assert set(uf) == set(before)
        # same partition: pairwise connectivity must match the snapshot
        for e, root in before.items():
            assert uf.find(e) == uf.find(root)
        for a in before:
            for b in before:
                assert (uf.find(a) == uf.find(b)) == (before[a] == before[b])

    def test_rollback_removes_speculative_elements(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.checkpoint()
        uf.union("c", "d")
        uf.add("e")
        uf.rollback()
        assert "c" not in uf and "e" not in uf
        assert len(uf) == 2

    def test_journal_does_not_nest(self):
        uf = UnionFind()
        uf.checkpoint()
        try:
            uf.checkpoint()
        except RuntimeError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("expected RuntimeError")
        uf.rollback()
        try:
            uf.rollback()
        except RuntimeError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("expected RuntimeError")

    def test_absorb_disjoint(self):
        left, right = UnionFind(), UnionFind()
        left.union(1, 2)
        right.union("x", "y")
        right.add("z")
        left.absorb(right)
        assert len(left) == 5
        assert left.n_components == 3
        assert left.connected("x", "y") and not left.connected(1, "x")

    def test_absorb_rejects_overlap(self):
        left, right = UnionFind(), UnionFind()
        left.add(1)
        right.add(1)
        try:
            left.absorb(right)
        except ValueError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("expected ValueError")


def _optimistic_ops(max_obj: int = 12, max_size: int = 30):
    return st.lists(
        st.tuples(
            st.booleans(),  # True: assume_matching, False: add_non_matching
            st.integers(0, max_obj),
            st.integers(0, max_obj),
        ),
        max_size=max_size,
    )


def _apply_ops(graph: OptimisticGraph, ops) -> None:
    for matching, a, b in ops:
        if a == b:
            continue
        if matching:
            graph.assume_matching(a, b)
        else:
            graph.add_non_matching(a, b)


def _snapshot(graph: OptimisticGraph, max_obj: int):
    return [
        graph.deduce(Pair(a, b)) for a in range(max_obj + 1) for b in range(a + 1, max_obj + 1)
    ]


class TestOptimisticGraphRollback:
    @given(_optimistic_ops(), _optimistic_ops())
    @settings(max_examples=150, deadline=None)
    def test_rollback_restores_deductions(self, base_ops, speculative_ops):
        """After rollback, every deduction answers exactly as before the
        checkpoint — and the graph is still usable for further real ops."""
        graph = OptimisticGraph()
        _apply_ops(graph, base_ops)
        before = _snapshot(graph, 12)
        graph.checkpoint()
        _apply_ops(graph, speculative_ops)
        graph.rollback()
        assert _snapshot(graph, 12) == before
        # the graph must stay equivalent to a freshly built one
        fresh = OptimisticGraph()
        _apply_ops(fresh, base_ops)
        assert _snapshot(fresh, 12) == before

    @given(_optimistic_ops(max_size=20), _optimistic_ops(max_size=15), _optimistic_ops(max_size=15))
    @settings(max_examples=80, deadline=None)
    def test_repeated_checkpoint_cycles(self, base_ops, spec_a, spec_b):
        """Checkpoint/rollback cycles interleaved with permanent ops match a
        replay without the speculative ops."""
        graph = OptimisticGraph()
        _apply_ops(graph, base_ops)
        graph.checkpoint()
        _apply_ops(graph, spec_a)
        graph.rollback()
        _apply_ops(graph, spec_b)  # permanent
        graph.checkpoint()
        _apply_ops(graph, spec_a)
        graph.rollback()
        replay = OptimisticGraph()
        _apply_ops(replay, base_ops)
        _apply_ops(replay, spec_b)
        assert _snapshot(graph, 12) == _snapshot(replay, 12)


class TestFrontierCursorParity:
    @given(worlds())
    @settings(max_examples=80, deadline=None)
    def test_matches_full_scan_at_every_state(self, world):
        """At every intermediate labeling state of a sequential run the
        cursor selects exactly what the full scan (and the frozen PR-1
        reference) selects."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        cursor = FrontierCursor(candidates)
        labeled: dict[Pair, Label] = {}
        for cand in candidates:
            expected = must_crowdsource_frontier(candidates, labeled)
            assert cursor.frontier(labeled) == expected
            assert expected == reference_parallel_selection(candidates, labeled)
            labeled.setdefault(cand.pair, truth.label(cand.pair))
        assert cursor.frontier(labeled) == []
        assert cursor.decided_prefix == len({c.pair for c in candidates})

    @given(worlds(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_with_published_exclusions(self, world, rnd):
        """Published pairs keep their assumed-matching role but leave the
        selection — under random publish churn the cursor and the full scan
        must stay in lockstep."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        pairs = [c.pair for c in candidates]
        cursor = FrontierCursor(candidates)
        labeled: dict[Pair, Label] = {}
        published: set[Pair] = set()
        for pair in pairs:
            if rnd.random() < 0.4:
                unlabeled = [p for p in pairs if p not in labeled and p not in published]
                if unlabeled:
                    published.add(rnd.choice(unlabeled))
            expected = must_crowdsource_frontier(candidates, labeled, exclude=published)
            assert cursor.frontier(labeled, published) == expected
            if pair not in labeled:
                labeled[pair] = truth.label(pair)
                published.discard(pair)

    def test_cursor_advances_only_over_decided_prefix(self):
        order = [Pair("a", "b"), Pair("c", "d"), Pair("e", "f")]
        cursor = FrontierCursor(order)
        assert cursor.frontier({}) == order
        assert cursor.decided_prefix == 0
        # labeling a later position does not advance past the undecided head
        cursor.frontier({Pair("c", "d"): Label.MATCHING})
        assert cursor.decided_prefix == 0
        # labeling the head advances over the whole decided run
        labeled = {Pair("a", "b"): Label.MATCHING, Pair("c", "d"): Label.MATCHING}
        assert cursor.frontier(labeled) == [Pair("e", "f")]
        assert cursor.decided_prefix == 2

    def test_idempotent_calls(self):
        order = [Pair(1, 2), Pair(2, 3), Pair(1, 3), Pair(4, 5)]
        cursor = FrontierCursor(order)
        labeled = {Pair(1, 2): Label.MATCHING}
        first = cursor.frontier(labeled)
        assert cursor.frontier(labeled) == first
        assert cursor.frontier(labeled) == must_crowdsource_frontier(order, labeled)

    def test_positions_for_subsequences(self):
        """Sharded use: a cursor over an interleaved subsequence reports the
        global positions it was given."""
        order = [Pair(1, 2), Pair(2, 3)]
        cursor = FrontierCursor(order, positions=[3, 7])
        assert cursor.select({}) == [(3, Pair(1, 2)), (7, Pair(2, 3))]
        assert cursor.select({Pair(1, 2): Label.NON_MATCHING}) == [(7, Pair(2, 3))]
        try:
            FrontierCursor(order, positions=[1])
        except ValueError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("expected ValueError")
