"""Async runtime parity: AsyncDispatch must replicate the frozen references.

The async-first refactor routes every labeler through
:class:`repro.engine.async_dispatch.CrowdRuntime`; these tests pin that
runtime to the frozen pre-refactor loops in ``tests/engine/reference.py``:

* over the deterministic simulated client (FIFO, zero latency) the parity
  is *exact* — labels, rounds, oracle-call order, per-pair outcome records;
* under seeded shuffled completion orders (many workers, lognormal
  latency) and under injected expiry + re-issue, the observable result —
  labels, per-round published sets, crowdsourced counts — is still
  identical, on both the monolithic and the sharded engine backend;
* a full campaign through :class:`PollingPlatformClient` against the
  in-memory fake backend completes with out-of-order completions and an
  expired-and-reissued HIT;
* budget and timeout limits are enforced as runtime policies.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.crowd.aggregation import WeightedAggregation
from repro.crowd.budget import BudgetExceededError, BudgetPolicy
from repro.crowd.clients import (
    InMemoryCrowdBackend,
    ManualClock,
    PollingPlatformClient,
    SimulatedPlatformClient,
)
from repro.crowd.latency import LognormalLatency, TimeoutPolicy, ZeroLatency
from repro.crowd.platform import HITCompletion, SimulatedPlatform
from repro.crowd.review import EscalateOnLowConfidence
from repro.crowd.worker import PerfectWorker, Worker, make_worker_pool
from repro.engine import AsyncDispatch, CrowdRuntime, LabelingEngine, RuntimeMode

from ..aio import run_async
from ..conftest import FIGURE3_ENTITIES, FIGURE3_PAIRS
from ..strategies import worlds
from .reference import (
    RecordingOracle,
    expiring_client_factory,
    reference_parallel,
    reference_sequential,
    shuffled_client_factory,
)

BACKENDS = ("monolithic", "sharded")


class TestSequentialParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_exact_parity_over_fifo_client(self, backend, world):
        """Deterministic client: outcome records match the reference
        byte-for-byte, and the oracle is consulted in the same order."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        ref_oracle = RecordingOracle(truth)
        new_oracle = RecordingOracle(truth)
        reference = reference_sequential(candidates, ref_oracle)
        result = AsyncDispatch(RuntimeMode.SEQUENTIAL, backend=backend).run(
            candidates, new_oracle
        )
        assert result.outcomes == reference.outcomes
        assert result.rounds == reference.rounds
        assert new_oracle.calls == ref_oracle.calls

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(worlds())
    @settings(max_examples=20, deadline=None)
    def test_parity_under_expiry_and_reissue(self, backend, world):
        """Abandoned HITs are re-issued until answered; the final result
        is indistinguishable from the reference run."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_sequential(candidates, truth)
        dispatch = AsyncDispatch(
            RuntimeMode.SEQUENTIAL,
            backend=backend,
            client_factory=expiring_client_factory(seed=3),
        )
        result = dispatch.run(candidates, truth)
        assert result.labels() == reference.labels()
        assert result.rounds == reference.rounds
        assert result.n_crowdsourced == reference.n_crowdsourced
        assert result.n_deduced == reference.n_deduced


class TestRoundsParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_exact_parity_over_fifo_client(self, backend, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        ref_oracle = RecordingOracle(truth)
        new_oracle = RecordingOracle(truth)
        reference = reference_parallel(candidates, ref_oracle)
        result = AsyncDispatch(RuntimeMode.ROUNDS, backend=backend).run(
            candidates, new_oracle
        )
        assert result.outcomes == reference.outcomes
        assert result.rounds == reference.rounds
        assert new_oracle.calls == ref_oracle.calls

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", (1, 2, 3))
    @given(worlds())
    @settings(max_examples=15, deadline=None)
    def test_parity_under_shuffled_completion_orders(self, backend, seed, world):
        """Answers applied out of order must not change what each round
        publishes, what every pair is labeled, or what anything costs —
        rounds are decided by the *set* of answers, not their arrival."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_parallel(candidates, truth)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            backend=backend,
            client_factory=shuffled_client_factory(seed),
        )
        result = dispatch.run(candidates, truth)
        assert result.labels() == reference.labels()
        assert result.rounds == reference.rounds
        assert result.n_crowdsourced == reference.n_crowdsourced
        assert result.n_deduced == reference.n_deduced

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(worlds())
    @settings(max_examples=20, deadline=None)
    def test_parity_under_expiry_and_reissue(self, backend, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_parallel(candidates, truth)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            backend=backend,
            client_factory=expiring_client_factory(seed=5),
        )
        result = dispatch.run(candidates, truth)
        assert result.labels() == reference.labels()
        assert result.rounds == reference.rounds
        assert result.n_crowdsourced == reference.n_crowdsourced


class TestExpiryIsExercised:
    def test_reissues_actually_happen_and_are_reported(self):
        """On a fixed workload the expiring client must produce expiries,
        and the runtime must re-issue and still label everything."""
        entity_of = {f"o{i}": i // 3 for i in range(18)}
        objects = sorted(entity_of)
        order = [
            Pair(objects[i], objects[j])
            for i in range(len(objects))
            for j in range(i + 1, len(objects))
        ]
        truth = GroundTruthOracle(entity_of)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            client_factory=expiring_client_factory(seed=11, probability=0.5),
        )
        result = dispatch.run(order, truth)
        assert result.labels() == reference_parallel(order, truth).labels()
        assert dispatch.last_report is not None
        assert dispatch.last_report.n_expired_hits > 0
        assert dispatch.last_report.n_reissued_hits > 0


class TestPollingCampaign:
    def test_out_of_order_and_expired_hits_complete(self):
        """The acceptance scenario: a HIT-granularity campaign over
        :class:`PollingPlatformClient` against the in-memory fake, with
        scheduled (shuffled) completion latencies and one HIT the fake
        worker abandons — the campaign expires it, re-issues the pairs,
        and still resolves every candidate correctly."""
        entity_of = {f"o{i}": i // 2 for i in range(10)}
        objects = sorted(entity_of)
        order = [
            Pair(objects[i], objects[j])
            for i in range(len(objects))
            for j in range(i + 1, len(objects))
        ]
        truth = GroundTruthOracle(entity_of)
        clock = ManualClock()
        backend = InMemoryCrowdBackend(
            oracle=truth,
            clock=clock.now,
            latency=lambda rng: rng.uniform(1.0, 10.0),
            drop_hit_ids={1},
            seed=7,
        )
        client = PollingPlatformClient(
            backend,
            batch_size=4,
            n_assignments=1,
            poll_interval=0.5,
            clock=clock.now,
            sleep=clock.sleep,
        )
        completion_ids = []
        original_next_event = client.next_event

        async def recording_next_event():
            event = await original_next_event()
            if isinstance(event, HITCompletion):
                completion_ids.append(event.hit.hit_id)
            return event

        client.next_event = recording_next_event  # type: ignore[method-assign]

        engine = LabelingEngine(order)
        runtime = CrowdRuntime(
            engine,
            client,
            mode=RuntimeMode.HIT_INSTANT,
            timeout=TimeoutPolicy(hit_timeout=30.0, max_reissues=3),
        )
        report = run_async(runtime.run())

        assert engine.is_done
        for pair in order:
            assert engine.result.label_of(pair) is truth.label(pair)
        assert report.n_expired_hits >= 1
        assert report.n_reissued_hits >= 1
        # Scheduled latencies shuffle delivery: completions must not have
        # arrived in publication order.
        assert completion_ids != sorted(completion_ids)
        # The dropped HIT's replacement was a fresh id created on the fake.
        assert backend.n_expired >= 1
        assert backend.n_created == len(report.hit_batches)


class TestRuntimePolicies:
    def figure3_order(self):
        return [FIGURE3_PAIRS[f"p{i}"] for i in range(1, 9)]

    def test_budget_policy_blocks_overrun(self):
        truth = GroundTruthOracle(FIGURE3_ENTITIES)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            budget=BudgetPolicy(max_assignments=1),
        )
        # Figure 3 needs two rounds ({p1,p2,p3,p5,p6} then {p7}): the
        # second submission must be refused.
        with pytest.raises(BudgetExceededError):
            dispatch.run(self.figure3_order(), truth)

    def test_budget_policy_admits_a_sufficient_cap(self):
        truth = GroundTruthOracle(FIGURE3_ENTITIES)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            budget=BudgetPolicy(max_assignments=10),
        )
        result = dispatch.run(self.figure3_order(), truth)
        assert result.n_crowdsourced == 6
        assert dispatch.last_report is not None
        assert dispatch.last_report.assignments_committed <= 10

    def test_timeout_policy_caps_reissue_chains(self):
        """A HIT lineage that keeps expiring fails fast instead of
        spinning forever."""
        truth = GroundTruthOracle(FIGURE3_ENTITIES)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            client_factory=expiring_client_factory(seed=0, probability=1.0),
            timeout=TimeoutPolicy(hit_timeout=1.0, max_reissues=2),
        )
        with pytest.raises(RuntimeError, match="max_reissues"):
            dispatch.run(self.figure3_order(), truth)

    def test_async_dispatch_rejects_hit_modes(self):
        with pytest.raises(ValueError):
            AsyncDispatch(RuntimeMode.HIT_INSTANT)

    def test_runtime_rejects_mismatched_preplanned(self):
        engine = LabelingEngine([Pair("a", "b")])
        client = SimulatedPlatformClient.for_oracle(
            GroundTruthOracle({"a": 0, "b": 0})
        )
        with pytest.raises(ValueError):
            CrowdRuntime(engine, client, mode=RuntimeMode.ROUNDS, preplanned=[[]])
        with pytest.raises(ValueError):
            CrowdRuntime(engine, client, mode=RuntimeMode.SERIAL)

    def test_runtime_is_single_shot(self):
        truth = GroundTruthOracle({"a": 0, "b": 0})
        engine = LabelingEngine([Pair("a", "b")])
        runtime = CrowdRuntime(
            engine,
            SimulatedPlatformClient.for_oracle(truth),
            mode=RuntimeMode.ROUNDS,
        )
        run_async(runtime.run())
        assert engine.is_done
        with pytest.raises(RuntimeError, match="single-shot"):
            run_async(runtime.run())


#: Three disjoint (no shared objects, so no transitivity) matching pairs —
#: the smallest workload where every vote-quality counter is predictable.
DISJOINT_ENTITIES = {"a0": 0, "b0": 0, "a1": 1, "b1": 1, "a2": 2, "b2": 2}
DISJOINT_PAIRS = [Pair(f"a{i}", f"b{i}") for i in range(3)]


class _Contrarian:
    """Always answers the negation of the truth: paired with a perfect
    worker at two assignments per HIT, every aggregation is an exact tie."""

    def answer(self, pair, true_label, likelihood):
        return true_label.negate()


class _SecondThoughts:
    """Wrong the first time it sees a pair, right ever after — a crowd
    that settles once a question is re-asked."""

    def __init__(self) -> None:
        self._seen = set()

    def answer(self, pair, true_label, likelihood):
        if pair not in self._seen:
            self._seen.add(pair)
            return true_label.negate()
        return true_label


def split_crowd_factory(second_model):
    """One perfect worker against ``second_model``, two assignments per
    HIT: the first wave of votes on every pair is a 1-1 tie."""

    def factory(oracle):
        platform = SimulatedPlatform(
            workers=[
                Worker(worker_id=0, model=PerfectWorker(), speed=1.0),
                Worker(worker_id=1, model=second_model, speed=1.0),
            ],
            truth=oracle,
            latency=ZeroLatency(),
            batch_size=1,
            n_assignments=2,
            seed=0,
        )
        return SimulatedPlatformClient(platform)

    return factory


class TestEscalation:
    """Regression: a tied aggregation used to become a silent NON_MATCHING.
    With :class:`EscalateOnLowConfidence` the runtime re-issues the pair for
    fresh assignments instead, bounded by ``max_escalations``."""

    def _dispatch(self, second_model, **kwargs):
        return AsyncDispatch(
            RuntimeMode.ROUNDS,
            client_factory=split_crowd_factory(second_model),
            aggregation=WeightedAggregation(update_from_agreement=False),
            review=EscalateOnLowConfidence(),
            **kwargs,
        )

    def test_escalation_rescues_labels_a_tie_break_would_get_wrong(self):
        """First wave ties on every pair; the re-ask is unanimous — every
        label ends correct where the plain tie-break would have been wrong
        (all pairs match, the tie-break says NON_MATCHING)."""
        truth = GroundTruthOracle(DISJOINT_ENTITIES)
        dispatch = self._dispatch(_SecondThoughts())
        result = dispatch.run(DISJOINT_PAIRS, truth)
        report = dispatch.last_report
        assert report.n_escalations == len(DISJOINT_PAIRS)
        assert report.n_tie_broken == len(DISJOINT_PAIRS)  # the first wave
        for pair in DISJOINT_PAIRS:
            assert result.label_of(pair) is truth.label(pair)
            # The last observed vote on each pair was unanimous.
            assert report.vote_margins[pair] > 0.0

    def test_persistent_ties_settle_at_the_escalation_bound(self):
        """A crowd that stays split forever is re-asked ``max_escalations``
        times, then the tie-break label is accepted — no infinite loop."""
        truth = GroundTruthOracle(DISJOINT_ENTITIES)
        dispatch = self._dispatch(_Contrarian(), max_escalations=1)
        result = dispatch.run(DISJOINT_PAIRS, truth)
        report = dispatch.last_report
        assert report.n_escalations == len(DISJOINT_PAIRS)
        # Both waves (original + escalated re-ask) were coin flips.
        assert report.n_tie_broken == 2 * len(DISJOINT_PAIRS)
        assert report.n_completions == 2 * len(DISJOINT_PAIRS)
        assert len(report.hit_batches) == 2 * len(DISJOINT_PAIRS)
        for pair in DISJOINT_PAIRS:
            assert report.vote_margins[pair] == 0.0
            assert result.label_of(pair) is Label.NON_MATCHING  # tie-break

    def test_zero_max_escalations_disables_reissue(self):
        truth = GroundTruthOracle(DISJOINT_ENTITIES)
        dispatch = self._dispatch(_Contrarian(), max_escalations=0)
        dispatch.run(DISJOINT_PAIRS, truth)
        report = dispatch.last_report
        assert report.n_escalations == 0
        assert report.n_completions == len(DISJOINT_PAIRS)
        assert report.n_tie_broken == len(DISJOINT_PAIRS)

    def test_negative_max_escalations_rejected(self):
        with pytest.raises(ValueError, match="max_escalations"):
            CrowdRuntime(
                LabelingEngine(DISJOINT_PAIRS),
                SimulatedPlatformClient.for_oracle(
                    GroundTruthOracle(DISJOINT_ENTITIES)
                ),
                mode=RuntimeMode.ROUNDS,
                max_escalations=-1,
            )


class TestVoteQualityReport:
    def test_low_margin_aggregations_are_counted(self):
        """Two perfect workers against one contrarian: every pair resolves
        correctly but 2-1, below the LOW_CONFIDENCE share — counted as
        low-margin, never as tie-broken."""

        def factory(oracle):
            platform = SimulatedPlatform(
                workers=[
                    Worker(worker_id=0, model=PerfectWorker(), speed=1.0),
                    Worker(worker_id=1, model=PerfectWorker(), speed=1.0),
                    Worker(worker_id=2, model=_Contrarian(), speed=1.0),
                ],
                truth=oracle,
                latency=ZeroLatency(),
                batch_size=1,
                n_assignments=3,
                seed=0,
            )
            return SimulatedPlatformClient(platform)

        truth = GroundTruthOracle(DISJOINT_ENTITIES)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            client_factory=factory,
            aggregation=WeightedAggregation(update_from_agreement=False),
        )
        result = dispatch.run(DISJOINT_PAIRS, truth)
        report = dispatch.last_report
        assert report.n_low_margin == len(DISJOINT_PAIRS)
        assert report.n_tie_broken == 0
        assert report.n_escalations == 0
        for pair in DISJOINT_PAIRS:
            assert result.label_of(pair) is truth.label(pair)
            assert report.vote_margins[pair] > 0.0


class TestRuntimeSnapshotV2:
    """The quality-aware dispatch state — escalation bookkeeping, vote
    diagnostics, the worker-accuracy tracker — rides the v2 runtime
    snapshot; v1 snapshots (pre-quality) still restore."""

    def _runtime(self, aggregation=None, mode=RuntimeMode.ROUNDS, ordering="static"):
        return CrowdRuntime(
            LabelingEngine(DISJOINT_PAIRS),
            SimulatedPlatformClient.for_oracle(
                GroundTruthOracle(DISJOINT_ENTITIES)
            ),
            mode=mode,
            ordering=ordering,
            aggregation=aggregation,
        )

    def test_escalation_and_aggregation_state_round_trips(self):
        source = self._runtime(aggregation=WeightedAggregation())
        pairs = source.engine.pairs
        source._escalation_counts = {pairs[0]: 1}
        source._pending_escalations = [pairs[1]]
        source._aggregation.tracker.record_gold(4, correct=True)
        source._aggregation.tracker.record_agreement(9, agreed=False)
        source.report.n_tie_broken = 2
        source.report.n_low_margin = 1
        source.report.n_escalations = 1
        source.report.vote_margins = {pairs[0]: 0.0, pairs[2]: 1.5}
        # The JSON round trip is part of the contract: snapshots live
        # inside journal records.
        snapshot = json.loads(json.dumps(source.snapshot_state()))
        assert snapshot["version"] == 2
        assert snapshot["ordering"] == "static"
        restored = self._runtime(aggregation=WeightedAggregation())
        restored.restore_state(snapshot)
        assert restored._escalation_counts == {pairs[0]: 1}
        assert restored._pending_escalations == [pairs[1]]
        tracker = restored._aggregation.tracker
        assert tracker.known_workers() == [4, 9]
        for worker_id in (4, 9, 99):
            assert tracker.accuracy(worker_id) == source._aggregation.tracker.accuracy(worker_id)
        assert restored.report.n_tie_broken == 2
        assert restored.report.n_low_margin == 1
        assert restored.report.n_escalations == 1
        assert restored.report.vote_margins == {pairs[0]: 0.0, pairs[2]: 1.5}

    def test_v1_snapshot_restores_with_pre_quality_defaults(self):
        source = self._runtime()
        snapshot = json.loads(json.dumps(source.snapshot_state()))
        snapshot["version"] = 1
        for key in ("ordering", "escalation_counts", "pending_escalations", "aggregation"):
            del snapshot[key]
        for key in ("n_tie_broken", "n_low_margin", "n_escalations", "vote_margins"):
            del snapshot["report"][key]
        restored = self._runtime(aggregation=WeightedAggregation())
        restored.restore_state(snapshot)
        assert restored._escalation_counts == {}
        assert restored._pending_escalations == []
        assert restored._aggregation.tracker.known_workers() == []
        assert restored.report.n_escalations == 0
        assert restored.report.vote_margins == {}

    def test_ordering_mismatch_is_rejected(self):
        source = self._runtime(
            mode=RuntimeMode.SEQUENTIAL, ordering="expected-value"
        )
        snapshot = source.snapshot_state()
        target = self._runtime(mode=RuntimeMode.SEQUENTIAL)
        with pytest.raises(ValueError, match="ordering"):
            target.restore_state(snapshot)

    def test_unknown_snapshot_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            self._runtime().restore_state({"version": 3, "mode": "rounds"})

    def test_live_tracker_state_is_captured_at_safe_points(self):
        """The service journals ``snapshot_state()`` at safe points: the
        agreement feedback the tracker accrued mid-run must ride along, so
        a crash-recovered campaign keeps its learned worker weights."""
        truth = GroundTruthOracle(FIGURE3_ENTITIES)
        order = [FIGURE3_PAIRS[f"p{i}"] for i in range(1, 9)]
        engine = LabelingEngine(order)
        platform = SimulatedPlatform(
            workers=[
                Worker(worker_id=i, model=PerfectWorker(), speed=1.0)
                for i in range(3)
            ],
            truth=truth,
            latency=ZeroLatency(),
            batch_size=1,
            n_assignments=3,
            seed=3,
        )
        runtime = CrowdRuntime(
            engine,
            SimulatedPlatformClient(platform),
            mode=RuntimeMode.ROUNDS,
            aggregation=WeightedAggregation(),
        )
        tracker = runtime._aggregation.tracker
        captures = []

        def capture():
            # Pair each snapshot with the accuracies observed at the same
            # safe point, so the round trip below checks mid-run state.
            accuracies = {
                w: tracker.accuracy(w) for w in tracker.known_workers()
            }
            captures.append((json.dumps(runtime.snapshot_state()), accuracies))

        runtime.on_safe_point = capture
        run_async(runtime.run())
        snapshot, accuracies = captures[-1]
        assert accuracies, "agreement feedback never reached the tracker"
        restored = WeightedAggregation()
        restored.restore_state(json.loads(snapshot)["aggregation"])
        assert restored.tracker.known_workers() == sorted(accuracies)
        for worker_id, accuracy in accuracies.items():
            assert restored.tracker.accuracy(worker_id) == accuracy


class TestAwaitableEntryPoint:
    @given(worlds())
    @settings(max_examples=20, deadline=None)
    def test_run_async_inside_a_loop_matches_run(self, world):
        """run_async awaited from caller-owned loops gives the same result
        as the synchronous wrapper."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        sync_result = AsyncDispatch(RuntimeMode.ROUNDS).run(candidates, truth)
        async_result = run_async(
            AsyncDispatch(RuntimeMode.ROUNDS).run_async(candidates, truth)
        )
        assert async_result.outcomes == sync_result.outcomes
