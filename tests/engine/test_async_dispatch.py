"""Async runtime parity: AsyncDispatch must replicate the frozen references.

The async-first refactor routes every labeler through
:class:`repro.engine.async_dispatch.CrowdRuntime`; these tests pin that
runtime to the frozen pre-refactor loops in ``tests/engine/reference.py``:

* over the deterministic simulated client (FIFO, zero latency) the parity
  is *exact* — labels, rounds, oracle-call order, per-pair outcome records;
* under seeded shuffled completion orders (many workers, lognormal
  latency) and under injected expiry + re-issue, the observable result —
  labels, per-round published sets, crowdsourced counts — is still
  identical, on both the monolithic and the sharded engine backend;
* a full campaign through :class:`PollingPlatformClient` against the
  in-memory fake backend completes with out-of-order completions and an
  expired-and-reissued HIT;
* budget and timeout limits are enforced as runtime policies.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Pair
from repro.crowd.budget import BudgetExceededError, BudgetPolicy
from repro.crowd.clients import (
    InMemoryCrowdBackend,
    ManualClock,
    PollingPlatformClient,
    SimulatedPlatformClient,
)
from repro.crowd.latency import LognormalLatency, TimeoutPolicy
from repro.crowd.platform import HITCompletion, SimulatedPlatform
from repro.crowd.worker import make_worker_pool
from repro.engine import AsyncDispatch, CrowdRuntime, LabelingEngine, RuntimeMode

from ..aio import run_async
from ..conftest import FIGURE3_ENTITIES, FIGURE3_PAIRS
from ..strategies import worlds
from .reference import RecordingOracle, reference_parallel, reference_sequential

BACKENDS = ("monolithic", "sharded")


def shuffled_client_factory(seed: int):
    """Simulated client whose completions arrive out of publication order:
    a pool of perfect workers with distinct speeds plus lognormal pickup
    delays, one pair per HIT."""

    def factory(oracle):
        platform = SimulatedPlatform(
            workers=make_worker_pool(8, seed=seed),
            truth=oracle,
            latency=LognormalLatency(),
            batch_size=1,
            n_assignments=1,
            seed=seed,
        )
        return SimulatedPlatformClient(platform)

    return factory


def expiring_client_factory(seed: int, probability: float = 0.4):
    """Deterministic FIFO client that additionally abandons a seeded
    fraction of HITs (each at most once), forcing the re-issue path."""

    def factory(oracle):
        client = SimulatedPlatformClient.for_oracle(oracle, seed=seed)
        return SimulatedPlatformClient(
            client.platform, expire_probability=probability, expire_seed=seed
        )

    return factory


class TestSequentialParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_exact_parity_over_fifo_client(self, backend, world):
        """Deterministic client: outcome records match the reference
        byte-for-byte, and the oracle is consulted in the same order."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        ref_oracle = RecordingOracle(truth)
        new_oracle = RecordingOracle(truth)
        reference = reference_sequential(candidates, ref_oracle)
        result = AsyncDispatch(RuntimeMode.SEQUENTIAL, backend=backend).run(
            candidates, new_oracle
        )
        assert result.outcomes == reference.outcomes
        assert result.rounds == reference.rounds
        assert new_oracle.calls == ref_oracle.calls

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(worlds())
    @settings(max_examples=20, deadline=None)
    def test_parity_under_expiry_and_reissue(self, backend, world):
        """Abandoned HITs are re-issued until answered; the final result
        is indistinguishable from the reference run."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_sequential(candidates, truth)
        dispatch = AsyncDispatch(
            RuntimeMode.SEQUENTIAL,
            backend=backend,
            client_factory=expiring_client_factory(seed=3),
        )
        result = dispatch.run(candidates, truth)
        assert result.labels() == reference.labels()
        assert result.rounds == reference.rounds
        assert result.n_crowdsourced == reference.n_crowdsourced
        assert result.n_deduced == reference.n_deduced


class TestRoundsParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_exact_parity_over_fifo_client(self, backend, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        ref_oracle = RecordingOracle(truth)
        new_oracle = RecordingOracle(truth)
        reference = reference_parallel(candidates, ref_oracle)
        result = AsyncDispatch(RuntimeMode.ROUNDS, backend=backend).run(
            candidates, new_oracle
        )
        assert result.outcomes == reference.outcomes
        assert result.rounds == reference.rounds
        assert new_oracle.calls == ref_oracle.calls

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", (1, 2, 3))
    @given(worlds())
    @settings(max_examples=15, deadline=None)
    def test_parity_under_shuffled_completion_orders(self, backend, seed, world):
        """Answers applied out of order must not change what each round
        publishes, what every pair is labeled, or what anything costs —
        rounds are decided by the *set* of answers, not their arrival."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_parallel(candidates, truth)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            backend=backend,
            client_factory=shuffled_client_factory(seed),
        )
        result = dispatch.run(candidates, truth)
        assert result.labels() == reference.labels()
        assert result.rounds == reference.rounds
        assert result.n_crowdsourced == reference.n_crowdsourced
        assert result.n_deduced == reference.n_deduced

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(worlds())
    @settings(max_examples=20, deadline=None)
    def test_parity_under_expiry_and_reissue(self, backend, world):
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        reference = reference_parallel(candidates, truth)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            backend=backend,
            client_factory=expiring_client_factory(seed=5),
        )
        result = dispatch.run(candidates, truth)
        assert result.labels() == reference.labels()
        assert result.rounds == reference.rounds
        assert result.n_crowdsourced == reference.n_crowdsourced


class TestExpiryIsExercised:
    def test_reissues_actually_happen_and_are_reported(self):
        """On a fixed workload the expiring client must produce expiries,
        and the runtime must re-issue and still label everything."""
        entity_of = {f"o{i}": i // 3 for i in range(18)}
        objects = sorted(entity_of)
        order = [
            Pair(objects[i], objects[j])
            for i in range(len(objects))
            for j in range(i + 1, len(objects))
        ]
        truth = GroundTruthOracle(entity_of)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            client_factory=expiring_client_factory(seed=11, probability=0.5),
        )
        result = dispatch.run(order, truth)
        assert result.labels() == reference_parallel(order, truth).labels()
        assert dispatch.last_report is not None
        assert dispatch.last_report.n_expired_hits > 0
        assert dispatch.last_report.n_reissued_hits > 0


class TestPollingCampaign:
    def test_out_of_order_and_expired_hits_complete(self):
        """The acceptance scenario: a HIT-granularity campaign over
        :class:`PollingPlatformClient` against the in-memory fake, with
        scheduled (shuffled) completion latencies and one HIT the fake
        worker abandons — the campaign expires it, re-issues the pairs,
        and still resolves every candidate correctly."""
        entity_of = {f"o{i}": i // 2 for i in range(10)}
        objects = sorted(entity_of)
        order = [
            Pair(objects[i], objects[j])
            for i in range(len(objects))
            for j in range(i + 1, len(objects))
        ]
        truth = GroundTruthOracle(entity_of)
        clock = ManualClock()
        backend = InMemoryCrowdBackend(
            oracle=truth,
            clock=clock.now,
            latency=lambda rng: rng.uniform(1.0, 10.0),
            drop_hit_ids={1},
            seed=7,
        )
        client = PollingPlatformClient(
            backend,
            batch_size=4,
            n_assignments=1,
            poll_interval=0.5,
            clock=clock.now,
            sleep=clock.sleep,
        )
        completion_ids = []
        original_next_event = client.next_event

        async def recording_next_event():
            event = await original_next_event()
            if isinstance(event, HITCompletion):
                completion_ids.append(event.hit.hit_id)
            return event

        client.next_event = recording_next_event  # type: ignore[method-assign]

        engine = LabelingEngine(order)
        runtime = CrowdRuntime(
            engine,
            client,
            mode=RuntimeMode.HIT_INSTANT,
            timeout=TimeoutPolicy(hit_timeout=30.0, max_reissues=3),
        )
        report = run_async(runtime.run())

        assert engine.is_done
        for pair in order:
            assert engine.result.label_of(pair) is truth.label(pair)
        assert report.n_expired_hits >= 1
        assert report.n_reissued_hits >= 1
        # Scheduled latencies shuffle delivery: completions must not have
        # arrived in publication order.
        assert completion_ids != sorted(completion_ids)
        # The dropped HIT's replacement was a fresh id created on the fake.
        assert backend.n_expired >= 1
        assert backend.n_created == len(report.hit_batches)


class TestRuntimePolicies:
    def figure3_order(self):
        return [FIGURE3_PAIRS[f"p{i}"] for i in range(1, 9)]

    def test_budget_policy_blocks_overrun(self):
        truth = GroundTruthOracle(FIGURE3_ENTITIES)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            budget=BudgetPolicy(max_assignments=1),
        )
        # Figure 3 needs two rounds ({p1,p2,p3,p5,p6} then {p7}): the
        # second submission must be refused.
        with pytest.raises(BudgetExceededError):
            dispatch.run(self.figure3_order(), truth)

    def test_budget_policy_admits_a_sufficient_cap(self):
        truth = GroundTruthOracle(FIGURE3_ENTITIES)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            budget=BudgetPolicy(max_assignments=10),
        )
        result = dispatch.run(self.figure3_order(), truth)
        assert result.n_crowdsourced == 6
        assert dispatch.last_report is not None
        assert dispatch.last_report.assignments_committed <= 10

    def test_timeout_policy_caps_reissue_chains(self):
        """A HIT lineage that keeps expiring fails fast instead of
        spinning forever."""
        truth = GroundTruthOracle(FIGURE3_ENTITIES)
        dispatch = AsyncDispatch(
            RuntimeMode.ROUNDS,
            client_factory=expiring_client_factory(seed=0, probability=1.0),
            timeout=TimeoutPolicy(hit_timeout=1.0, max_reissues=2),
        )
        with pytest.raises(RuntimeError, match="max_reissues"):
            dispatch.run(self.figure3_order(), truth)

    def test_async_dispatch_rejects_hit_modes(self):
        with pytest.raises(ValueError):
            AsyncDispatch(RuntimeMode.HIT_INSTANT)

    def test_runtime_rejects_mismatched_preplanned(self):
        engine = LabelingEngine([Pair("a", "b")])
        client = SimulatedPlatformClient.for_oracle(
            GroundTruthOracle({"a": 0, "b": 0})
        )
        with pytest.raises(ValueError):
            CrowdRuntime(engine, client, mode=RuntimeMode.ROUNDS, preplanned=[[]])
        with pytest.raises(ValueError):
            CrowdRuntime(engine, client, mode=RuntimeMode.SERIAL)

    def test_runtime_is_single_shot(self):
        truth = GroundTruthOracle({"a": 0, "b": 0})
        engine = LabelingEngine([Pair("a", "b")])
        runtime = CrowdRuntime(
            engine,
            SimulatedPlatformClient.for_oracle(truth),
            mode=RuntimeMode.ROUNDS,
        )
        run_async(runtime.run())
        assert engine.is_done
        with pytest.raises(RuntimeError, match="single-shot"):
            run_async(runtime.run())


class TestAwaitableEntryPoint:
    @given(worlds())
    @settings(max_examples=20, deadline=None)
    def test_run_async_inside_a_loop_matches_run(self, world):
        """run_async awaited from caller-owned loops gives the same result
        as the synchronous wrapper."""
        candidates, entity_of = world
        truth = GroundTruthOracle(entity_of)
        sync_result = AsyncDispatch(RuntimeMode.ROUNDS).run(candidates, truth)
        async_result = run_async(
            AsyncDispatch(RuntimeMode.ROUNDS).run_async(candidates, truth)
        )
        assert async_result.outcomes == sync_result.outcomes
