"""Property suite for the vectorized backend's array-native kernels.

The backend-matrix file pins ``backend="vectorized"`` end-to-end against the
frozen references; this file attacks the kernels themselves:

* **bulk-deduce parity** — after every batch of a random answer sequence,
  :meth:`VectorizedEngineCore.sweep` must resolve exactly the pairs a
  per-pair :meth:`ClusterGraph.deduce` scan resolves, and the scalar
  ``deduce`` over the array state must agree with the monolithic graph on
  every order pair;
* **shuffled completion orders** — the same answer multiset applied in two
  different orders must converge to the same deduce state and frontier
  (the async runtime applies out-of-order completions);
* **checkpoint/rollback parity** — across growing labeled/excluded states,
  the Boruvka/cursor frontier must equal both
  :func:`must_crowdsource_frontier` (the reference scan) and a persistent
  :class:`FrontierCursor` (the checkpoint/rollback incremental path);
* **no-numpy fallback** — with ``sys.modules["numpy"]`` stubbed out the
  backend reports unavailable, ``backend="vectorized"`` degrades to
  sharded, and ``backend="auto"`` skips the vectorized tier.

The fallback tests run everywhere; everything touching the kernels is
skipped on interpreters without numpy (the ``no-extras`` CI leg).
"""

from __future__ import annotations

import random
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster_graph import (
    ClusterGraph,
    ConflictPolicy,
    InconsistentLabelError,
)
from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, Pair
from repro.engine import (
    DEFAULT_SHARD_THRESHOLD,
    FrontierCursor,
    LabelingEngine,
    VectorizedClusterGraph,
    VectorizedEngineCore,
    must_crowdsource_frontier,
    vectorized_available,
)
from repro.engine.vectorized import array_namespace

from ..strategies import worlds

needs_numpy = pytest.mark.skipif(
    not vectorized_available(), reason="vectorized backend requires numpy"
)


def truth_answers(candidates, entity_of):
    """(pair, ground-truth label) per order pair, in order."""
    oracle = GroundTruthOracle(entity_of)
    engine = LabelingEngine(candidates, backend="monolithic")
    return [(pair, oracle.label(pair)) for pair in engine.pairs]


@needs_numpy
class TestBulkDeduceParity:
    """sweep() == a per-pair ClusterGraph.deduce scan, batch by batch."""

    @given(worlds(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_random_answer_sequences(self, world, rng):
        candidates, entity_of = world
        answers = truth_answers(candidates, entity_of)
        rng.shuffle(answers)
        core = VectorizedEngineCore(candidates)
        reference = ClusterGraph()
        order = core.pairs
        decided = set()
        while answers:
            batch, answers = answers[: rng.randint(1, 4)], answers[4:]
            batch = [(p, l) for p, l in batch if p not in decided]
            for pair, label in batch:
                reference.add(pair, label)
                decided.add(pair)
            # The reference resolution: every still-pending pair the
            # monolithic graph can now deduce, in order position.
            expected = [
                (pair, reference.deduce(pair))
                for pair in order
                if pair not in decided and reference.deducible(pair)
            ]
            resolved = core.apply_answers(batch)
            assert resolved == expected
            for pair, label in resolved:
                core.note_labeled(pair, label)
                reference.add(pair, label)
                decided.add(pair)
            # Scalar deduce over the array state agrees everywhere.
            for pair in order:
                assert core.deduce(pair) == reference.deduce(pair)
            core.check_invariants()

    @given(worlds())
    @settings(max_examples=25, deadline=None)
    def test_single_bulk_application_equals_full_reference(self, world):
        candidates, entity_of = world
        answers = truth_answers(candidates, entity_of)
        crowdsourced = answers[::2]
        core = VectorizedEngineCore(candidates)
        reference = ClusterGraph()
        for pair, label in crowdsourced:
            reference.add(pair, label)
        resolved = core.apply_answers(crowdsourced)
        decided = {pair for pair, _ in crowdsourced}
        expected = [
            (pair, reference.deduce(pair))
            for pair in core.pairs
            if pair not in decided and reference.deducible(pair)
        ]
        assert resolved == expected


@needs_numpy
class TestShuffledCompletionOrders:
    """Out-of-order completions converge to the same state and frontier."""

    @given(worlds(), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_final_state_is_order_independent(self, world, seed):
        candidates, entity_of = world
        answers = truth_answers(candidates, entity_of)
        shuffled = list(answers)
        random.Random(seed).shuffle(shuffled)

        cores = []
        for sequence in (answers, shuffled):
            core = VectorizedEngineCore(candidates)
            labeled = {}
            for pair, label in sequence:
                if pair in labeled:
                    continue
                labeled[pair] = label
                for dpair, dlabel in core.apply_answers([(pair, label)]):
                    core.note_labeled(dpair, dlabel)
                    labeled[dpair] = dlabel
            core.check_invariants()
            cores.append((core, labeled))

        (core_a, labeled_a), (core_b, labeled_b) = cores
        assert labeled_a == labeled_b
        for pair in core_a.pairs:
            assert core_a.deduce(pair) == core_b.deduce(pair)
        assert core_a.frontier(labeled_a) == core_b.frontier(labeled_b)

    @given(worlds(), st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_engine_record_answers_matches_per_answer_recording(
        self, world, seed
    ):
        """One record_answers() batch == the same answers one at a time."""
        candidates, entity_of = world
        answers = truth_answers(candidates, entity_of)
        random.Random(seed).shuffle(answers)

        batched = LabelingEngine(candidates, backend="vectorized")
        single = LabelingEngine(candidates, backend="vectorized")
        batched.record_answers(answers, round_index=0)
        for pair, label in answers:
            if pair in single.labeled:
                # Deduced by an earlier sweep; dispatch never re-answers.
                continue
            single.record_answer(pair, label, round_index=0)
            single.sweep(round_index=0)
        assert batched.labeled == single.labeled
        assert batched.frontier() == single.frontier()


@needs_numpy
class TestFrontierParity:
    """The Boruvka/cursor frontier vs the reference Algorithm-3 scan and
    the persistent checkpoint/rollback FrontierCursor."""

    @given(worlds(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_incremental_states_match_reference_and_cursor(self, world, rng):
        candidates, entity_of = world
        answers = truth_answers(candidates, entity_of)
        rng.shuffle(answers)
        core = VectorizedEngineCore(candidates)
        order = core.pairs
        cursor = FrontierCursor(order)
        labeled = {}
        published = set()
        while True:
            frontier = core.frontier(labeled, published)
            reference = must_crowdsource_frontier(order, labeled, published)
            assert frontier == reference
            assert frontier == [pair for _, pair in cursor.select(labeled, published)]
            remaining = [(p, l) for p, l in answers if p not in labeled]
            if not remaining:
                break
            # Publish a random slice of the selection, answer one pair
            # (possibly out of publication order), fold in deductions.
            if frontier and rng.random() < 0.7:
                batch = frontier[: rng.randint(1, len(frontier))]
                core.note_published(batch)
                for published_pair in batch:
                    core.mark_frontier_dirty(published_pair)
                published.update(batch)
            pair, label = remaining[rng.randrange(len(remaining))]
            labeled[pair] = label
            published.discard(pair)
            core.note_labeled(pair, label)
            core.graph_add(pair, label)
            core.mark_frontier_dirty(pair)
            for dpair, dlabel in core.sweep():
                labeled[dpair] = dlabel
                published.discard(dpair)
                core.note_labeled(dpair, dlabel)
                core.mark_frontier_dirty(dpair)
        assert core.frontier(labeled, published) == []

    @given(worlds())
    @settings(max_examples=25, deadline=None)
    def test_small_and_large_component_paths_agree(self, world):
        """Force every component down the batched Boruvka path and compare
        against the small-component scalar greedy path."""
        candidates, _ = world
        scalar = VectorizedEngineCore(candidates)
        batched = VectorizedEngineCore(candidates)
        # Dropping the threshold reroutes every dirty component through the
        # concatenated _forest_mask call.
        from repro.engine import vectorized as mod

        original = mod.SMALL_COMPONENT_THRESHOLD
        mod.SMALL_COMPONENT_THRESHOLD = 0
        try:
            batched_frontier = batched.frontier({})
        finally:
            mod.SMALL_COMPONENT_THRESHOLD = original
        assert batched_frontier == scalar.frontier({})


class TestNoNumpyFallback:
    """sys.modules stubbing: the engine must degrade, not crash."""

    def _hide_numpy(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        monkeypatch.setitem(sys.modules, "array_api_compat", None)

    def test_reports_unavailable(self, monkeypatch):
        self._hide_numpy(monkeypatch)
        assert array_namespace() is None
        assert not vectorized_available()

    def test_module_without_array_surface_counts_as_unavailable(
        self, monkeypatch
    ):
        import types

        monkeypatch.setitem(sys.modules, "numpy", types.ModuleType("numpy"))
        assert array_namespace() is None
        assert not vectorized_available()

    def test_explicit_vectorized_backend_falls_back_to_sharded(
        self, monkeypatch
    ):
        self._hide_numpy(monkeypatch)
        order = [Pair("a", "b"), Pair("b", "c")]
        engine = LabelingEngine(order, backend="vectorized")
        assert engine.backend == "sharded"
        assert engine._vectorized is None

    def test_auto_skips_the_vectorized_tier(self, monkeypatch):
        self._hide_numpy(monkeypatch)
        order = [Pair(f"l{i}", f"r{i}") for i in range(12)]
        engine = LabelingEngine(order, shard_threshold=10)
        assert engine.backend == "sharded"

    def test_core_construction_raises_import_error(self, monkeypatch):
        self._hide_numpy(monkeypatch)
        with pytest.raises(ImportError):
            VectorizedEngineCore([Pair("a", "b")])

    @needs_numpy
    def test_fallback_engine_still_labels_correctly(self, monkeypatch):
        """The degraded engine is a fully functional sharded engine."""
        self._hide_numpy(monkeypatch)
        truth = GroundTruthOracle({"a": 1, "b": 1, "c": 2})
        order = [Pair("a", "b"), Pair("b", "c"), Pair("a", "c")]
        engine = LabelingEngine(order, backend="vectorized")
        engine.record_answers(
            [(pair, truth.label(pair)) for pair in order[:2]], round_index=0
        )
        assert engine.labeled[Pair("a", "c")] is Label.NON_MATCHING


@needs_numpy
class TestVectorizedGraphContract:
    """Direct contract checks on the adapter and the core."""

    def test_auto_selects_vectorized_above_threshold(self):
        order = [Pair(f"l{i}", f"r{i}") for i in range(12)]
        assert LabelingEngine(order, shard_threshold=10).backend == "vectorized"
        assert (
            LabelingEngine(order, shard_threshold=len(order) + 1).backend
            == "monolithic"
        )
        assert DEFAULT_SHARD_THRESHOLD > 12

    def test_explicit_graph_is_rejected(self):
        with pytest.raises(ValueError):
            LabelingEngine(
                [Pair("a", "b")], graph=ClusterGraph(), backend="vectorized"
            )

    def test_foreign_objects_are_rejected(self):
        core = VectorizedEngineCore([Pair("a", "b")])
        graph = VectorizedClusterGraph(core)
        with pytest.raises(ValueError):
            graph.add(Pair("a", "z"), Label.MATCHING)
        assert graph.deduce(Pair("a", "z")) is None
        with pytest.raises(ValueError):
            graph.cluster_of("z")

    def test_cross_component_pairs_are_rejected(self):
        core = VectorizedEngineCore([Pair("a", "b"), Pair("c", "d")])
        with pytest.raises(ValueError):
            core.graph_add(Pair("a", "c"), Label.MATCHING)

    def test_strict_policy_raises_on_conflict(self):
        core = VectorizedEngineCore(
            [Pair("a", "b"), Pair("b", "c"), Pair("a", "c")]
        )
        core.graph_add(Pair("a", "b"), Label.MATCHING)
        core.graph_add(Pair("b", "c"), Label.MATCHING)
        with pytest.raises(InconsistentLabelError):
            core.graph_add(Pair("a", "c"), Label.NON_MATCHING)

    def test_first_wins_policy_records_the_conflict(self):
        core = VectorizedEngineCore(
            [Pair("a", "b"), Pair("b", "c"), Pair("a", "c")],
            policy=ConflictPolicy.FIRST_WINS,
        )
        core.graph_add(Pair("a", "b"), Label.MATCHING)
        core.graph_add(Pair("b", "c"), Label.MATCHING)
        assert not core.graph_add(Pair("a", "c"), Label.NON_MATCHING)
        assert len(core.conflicts) == 1
        assert core.deduce(Pair("a", "c")) is Label.MATCHING

    @given(worlds())
    @settings(max_examples=25, deadline=None)
    def test_inspection_matches_monolithic(self, world):
        candidates, entity_of = world
        answers = truth_answers(candidates, entity_of)
        core = VectorizedEngineCore(candidates)
        graph = VectorizedClusterGraph(core)
        reference = ClusterGraph()
        for pair, label in answers:
            graph.add(pair, label)
            reference.add(pair, label)
        assert graph.n_objects == reference.n_objects
        assert graph.n_clusters == reference.n_clusters
        assert graph.n_matching_edges == reference.n_matching_edges
        assert graph.n_non_matching_edges == reference.n_non_matching_edges
        assert sorted(map(sorted, graph.clusters())) == sorted(
            map(sorted, reference.clusters())
        )
        assert set(graph.objects()) == set(reference.objects())
        for pair, _ in answers:
            assert graph.same_cluster(pair.left, pair.right) == (
                reference.cluster_of(pair.left) == reference.cluster_of(pair.right)
            )
            assert graph.cluster_members(pair.left) == reference.cluster_members(
                pair.left
            )
        graph.check_invariants()
