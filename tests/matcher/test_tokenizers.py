"""Tests for text normalisation and tokenization."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.matcher.tokenizers import (
    normalize,
    numeric_tokens,
    qgram_set,
    qgrams,
    record_text,
    token_set,
    word_tokens,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("IPad TWO") == "ipad two"

    def test_collapses_whitespace(self):
        assert normalize("  a \t b\n c ") == "a b c"

    def test_strips_accents(self):
        assert normalize("Café Zürich") == "cafe zurich"

    def test_empty(self):
        assert normalize("") == ""

    @given(st.text(max_size=40))
    def test_idempotent(self, text):
        once = normalize(text)
        assert normalize(once) == once


class TestWordTokens:
    def test_splits_on_punctuation(self):
        assert word_tokens("iPad-2nd, Gen.") == ["ipad", "2nd", "gen"]

    def test_keeps_numbers(self):
        assert word_tokens("model X100 v2") == ["model", "x100", "v2"]

    def test_token_set_deduplicates(self):
        assert token_set("a b a b c") == {"a", "b", "c"}

    def test_empty(self):
        assert word_tokens("") == []


class TestQgrams:
    def test_padded_trigram_count(self):
        grams = qgrams("abc", q=3)
        # padded: "##abc##" -> 5 trigrams
        assert len(grams) == 5
        assert grams[0] == "##a"
        assert grams[-1] == "c##"

    def test_unpadded(self):
        assert qgrams("abcd", q=2, pad=False) == ["ab", "bc", "cd"]

    def test_short_string(self):
        assert qgrams("a", q=3, pad=False) == ["a"]

    def test_empty_string(self):
        assert qgrams("", q=3) == []

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    def test_qgram_set(self):
        assert "##a" in qgram_set("abc", q=3)

    @given(st.text(alphabet="abcd", min_size=1, max_size=20), st.integers(1, 4))
    def test_count_formula_unpadded(self, text, q):
        grams = qgrams(text, q=q, pad=False)
        normalised = normalize(text)
        expected = max(len(normalised) - q + 1, 1) if normalised else 0
        assert len(grams) == expected


class TestHelpers:
    def test_numeric_tokens(self):
        assert numeric_tokens("pages 246 to 254, vol 12") == ["246", "254", "12"]

    def test_record_text_skips_empty(self):
        assert record_text(["a", "", "b"]) == "a b"
