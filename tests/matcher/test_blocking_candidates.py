"""Tests for blocking, likelihood calibration, and candidate generation."""

from __future__ import annotations

import pytest

from repro.core.pairs import Pair
from repro.matcher.blocking import (
    all_pairs,
    block_statistics,
    build_inverted_index,
    reduction_ratio,
    token_blocking,
)
from repro.matcher.candidates import CandidateGenerator, likelihood_map
from repro.matcher.likelihood import (
    LogisticCalibration,
    fit_logistic,
    identity,
    threshold_filter,
)
from repro.matcher.similarity import string_jaccard


class TestInvertedIndex:
    def test_tokens_map_to_records(self):
        index = build_inverted_index({"r1": ["ipad", "two"], "r2": ["ipad", "case"]})
        assert set(index["ipad"]) == {"r1", "r2"}
        assert index["case"] == ["r2"]

    def test_max_block_size_drops_stop_words(self):
        tokens = {f"r{i}": ["common", f"rare{i}"] for i in range(10)}
        index = build_inverted_index(tokens, max_block_size=5)
        assert "common" not in index
        assert "rare3" in index

    def test_duplicate_tokens_counted_once(self):
        index = build_inverted_index({"r1": ["a", "a"]})
        assert index["a"] == ["r1"]


class TestTokenBlocking:
    def test_shared_token_produces_pair(self):
        pairs = token_blocking({"r1": ["ipad"], "r2": ["ipad"], "r3": ["case"]})
        assert pairs == {Pair("r1", "r2")}

    def test_bipartite_filters_same_source(self):
        pairs = token_blocking(
            {"a1": ["x"], "a2": ["x"], "b1": ["x"]},
            source_of={"a1": "abt", "a2": "abt", "b1": "buy"},
        )
        assert pairs == {Pair("a1", "b1"), Pair("a2", "b1")}

    def test_all_pairs_count(self):
        assert len(all_pairs(["a", "b", "c", "d"])) == 6

    def test_all_pairs_bipartite(self):
        pairs = all_pairs(
            ["a1", "a2", "b1"], source_of={"a1": "x", "a2": "x", "b1": "y"}
        )
        assert pairs == {Pair("a1", "b1"), Pair("a2", "b1")}

    def test_block_statistics(self):
        stats = block_statistics({"r1": ["a", "b"], "r2": ["a"]})
        assert stats["n_blocks"] == 2
        assert stats["max_block"] == 2

    def test_reduction_ratio(self):
        assert reduction_ratio(100, 495) == pytest.approx(0.9)
        assert reduction_ratio(0, 0) == 0.0


class TestLikelihood:
    def test_identity_clamps(self):
        assert identity(1.4) == 1.0
        assert identity(-0.2) == 0.0
        assert identity(0.6) == 0.6

    def test_logistic_midpoint(self):
        calibration = LogisticCalibration(midpoint=0.5, slope=10.0)
        assert calibration(0.5) == pytest.approx(0.5)
        assert calibration(1.0) > 0.95
        assert calibration(0.0) < 0.05

    def test_fit_logistic_separates_classes(self):
        samples = [(0.9, True), (0.8, True), (0.85, True), (0.2, False), (0.1, False), (0.3, False)]
        calibration = fit_logistic(samples, n_iterations=2000)
        assert calibration(0.9) > 0.5
        assert calibration(0.1) < 0.5

    def test_fit_logistic_needs_both_classes(self):
        with pytest.raises(ValueError):
            fit_logistic([(0.9, True), (0.8, True)])

    def test_fit_logistic_needs_samples(self):
        with pytest.raises(ValueError):
            fit_logistic([(0.9, True)])

    def test_threshold_filter_is_strict(self):
        items = [("a", 0.5), ("b", 0.51), ("c", 0.2)]
        assert threshold_filter(items, 0.5) == ["b"]


class TestCandidateGenerator:
    @pytest.fixture
    def records(self):
        return {
            "r1": "apple ipad two tablet",
            "r2": "apple ipad 2 tablet",
            "r3": "sony bravia television",
            "r4": "sony bravia tv",
        }

    def make_generator(self, records, **kwargs):
        tokens = {rid: text.split() for rid, text in records.items()}
        return CandidateGenerator(
            similarity=lambda a, b: string_jaccard(records[a], records[b]),
            tokens=tokens,
            **kwargs,
        )

    def test_generates_similar_pairs(self, records):
        generator = self.make_generator(records)
        result = generator.generate(list(records), threshold=0.4)
        pairs = set(result.pairs())
        assert Pair("r1", "r2") in pairs
        assert Pair("r3", "r4") in pairs
        assert Pair("r1", "r3") not in pairs

    def test_sorted_by_decreasing_likelihood(self, records):
        generator = self.make_generator(records)
        result = generator.generate(list(records), threshold=0.0)
        likelihoods = [c.likelihood for c in result]
        assert likelihoods == sorted(likelihoods, reverse=True)

    def test_above_rethresholds(self, records):
        generator = self.make_generator(records)
        result = generator.generate(list(records), threshold=0.1)
        strict = result.above(0.5)
        assert all(c.likelihood > 0.5 for c in strict)

    def test_above_rejects_lower_threshold(self, records):
        generator = self.make_generator(records)
        result = generator.generate(list(records), threshold=0.3)
        with pytest.raises(ValueError):
            result.above(0.1)

    def test_no_blocking_scores_everything(self, records):
        generator = CandidateGenerator(
            similarity=lambda a, b: string_jaccard(records[a], records[b]),
            tokens=None,
        )
        result = generator.generate(list(records), threshold=0.0)
        assert result.n_scored == 6  # C(4, 2)

    def test_likelihood_map(self, records):
        generator = self.make_generator(records)
        result = generator.generate(list(records), threshold=0.0)
        mapping = likelihood_map(result.candidates)
        assert len(mapping) == len(result)
