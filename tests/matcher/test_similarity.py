"""Tests for similarity functions — known values plus metric properties."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.matcher.similarity import (
    TfIdfCosine,
    WeightedFieldSimilarity,
    cosine_tokens,
    dice,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan,
    numeric_similarity,
    overlap_coefficient,
    string_jaccard,
)

words = st.text(alphabet="abcdef", min_size=0, max_size=12)
token_sets = st.sets(st.text(alphabet="abc", min_size=1, max_size=4), max_size=8)


class TestSetSimilarities:
    def test_jaccard_known_value(self):
        assert jaccard({"a", "b", "c"}, {"b", "c", "d"}) == pytest.approx(0.5)

    def test_dice_known_value(self):
        assert dice({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_overlap_known_value(self):
        assert overlap_coefficient({"a", "b"}, {"a", "b", "c", "d"}) == 1.0

    def test_empty_sets_are_identical(self):
        assert jaccard(set(), set()) == 1.0
        assert dice(set(), set()) == 1.0

    def test_one_empty_set(self):
        assert jaccard({"a"}, set()) == 0.0
        assert overlap_coefficient(set(), {"a"}) == 0.0

    @given(token_sets, token_sets)
    def test_jaccard_symmetric_and_bounded(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(token_sets)
    def test_jaccard_identity(self, a):
        assert jaccard(a, a) == 1.0

    @given(token_sets, token_sets)
    def test_dice_dominates_jaccard(self, a, b):
        assert dice(a, b) >= jaccard(a, b) - 1e-12


class TestLevenshtein:
    def test_known_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty_strings(self):
        assert levenshtein_distance("", "") == 0
        assert levenshtein_distance("abc", "") == 3

    def test_similarity_known_value(self):
        assert levenshtein_similarity("kitten", "sitting") == pytest.approx(1 - 3 / 7)

    @given(words, words)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(words)
    def test_identity(self, a):
        assert levenshtein_distance(a, a) == 0

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(words, words)
    def test_distance_bounded_by_longer_string(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))


class TestJaro:
    def test_textbook_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_winkler_textbook_value(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.961, abs=1e-3)

    def test_identical(self):
        assert jaro("abc", "abc") == 1.0

    def test_completely_different(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_winkler_boosts_prefix_matches(self):
        assert jaro_winkler("prefixed", "prefixes") >= jaro("prefixed", "prefixes")

    def test_winkler_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_weight=0.5, max_prefix=4)

    @given(words, words)
    def test_jaro_symmetric_and_bounded(self, a, b):
        assert jaro(a, b) == pytest.approx(jaro(b, a))
        assert 0.0 <= jaro(a, b) <= 1.0

    @given(words, words)
    def test_winkler_bounded(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0


class TestCosine:
    def test_identical_token_lists(self):
        assert cosine_tokens(["a", "b"], ["a", "b"]) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_tokens(["a"], ["b"]) == 0.0

    def test_multiset_weighting(self):
        close = cosine_tokens(["a", "a", "b"], ["a", "a", "c"])
        far = cosine_tokens(["a", "b", "b"], ["a", "c", "c"])
        assert close > far


class TestTfIdf:
    @pytest.fixture
    def corpus(self):
        return TfIdfCosine(
            [
                ["neural", "networks", "learning"],
                ["database", "query", "learning"],
                ["database", "systems", "transactions"],
                ["neural", "inference", "sampling"],
            ]
        )

    def test_rare_tokens_weigh_more(self, corpus):
        assert corpus.idf("transactions") > corpus.idf("learning")

    def test_self_similarity(self, corpus):
        assert corpus.similarity(["neural", "networks"], ["neural", "networks"]) == (
            pytest.approx(1.0)
        )

    def test_no_shared_tokens(self, corpus):
        assert corpus.similarity(["neural"], ["database"]) == 0.0

    def test_rare_overlap_beats_common_overlap(self, corpus):
        rare = corpus.similarity(["transactions", "x"], ["transactions", "y"])
        common = corpus.similarity(["learning", "x"], ["learning", "y"])
        assert rare > common

    def test_n_documents(self, corpus):
        assert corpus.n_documents == 4

    def test_unseen_token_gets_max_idf(self, corpus):
        assert corpus.idf("zzz") >= corpus.idf("transactions")


class TestMongeElkan:
    def test_identical(self):
        assert monge_elkan(["ipad", "two"], ["ipad", "two"]) == pytest.approx(1.0)

    def test_best_match_per_token(self):
        value = monge_elkan(["ipad"], ["ipad", "unrelated"])
        assert value == pytest.approx(1.0)

    def test_empty(self):
        assert monge_elkan([], []) == 1.0
        assert monge_elkan(["a"], []) == 0.0


class TestNumericSimilarity:
    def test_equal(self):
        assert numeric_similarity(5.0, 5.0) == 1.0

    def test_ratio(self):
        assert numeric_similarity(50.0, 100.0) == pytest.approx(0.5)

    def test_zero(self):
        assert numeric_similarity(0.0, 0.0) == 1.0
        assert numeric_similarity(0.0, 10.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            numeric_similarity(-1.0, 2.0)


class TestWeightedFieldSimilarity:
    def test_weights_normalised(self):
        sim = WeightedFieldSimilarity(
            {"name": (string_jaccard, 3.0), "brand": (string_jaccard, 1.0)}
        )
        score = sim.similarity(
            {"name": "ipad two", "brand": "apple"},
            {"name": "ipad two", "brand": "samsung"},
        )
        assert score == pytest.approx(0.75)

    def test_missing_field_contributes_zero(self):
        sim = WeightedFieldSimilarity({"name": (string_jaccard, 1.0)})
        assert sim.similarity({"name": "x"}, {}) == 0.0

    def test_rejects_empty_fields(self):
        with pytest.raises(ValueError):
            WeightedFieldSimilarity({})

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            WeightedFieldSimilarity({"name": (string_jaccard, 0.0)})
