"""Snapshot + journal compaction: bounded recovery, byte-identical state.

The differential mirrors ``test_recovery.py``: the uninterrupted,
never-compacted campaign is the frozen reference, and every compacted
variant — auto-compacted after every single record, compacted mid-run and
then crashed at every surviving record boundary, compacted on demand over
HTTP-equivalent service calls, or compacted after finishing — must land on
the byte-identical engine fingerprint with the same assignments spent.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import CampaignService
from repro.service.journal import Journal
from repro.spec import JournalConfig

from ..aio import run_async
from .helpers import (
    fingerprint_json,
    journal_record_offsets,
    make_spec,
    register_stepped,
    run_to_completion,
)

MODES = ["instant", "rounds", "sequential", "hit-rounds", "flood"]


def reference_run(spec, tmp_path):
    """Uninterrupted, never-compacted campaign: (fingerprint, spend)."""

    async def scenario():
        service = CampaignService(tmp_path / "reference")
        campaign = await run_to_completion(service, spec, campaign_id="ref")
        assert campaign.state.value == "done", campaign.error
        fp = fingerprint_json(campaign.engine)
        spend = campaign.runtime.report.assignments_committed
        await service.close()
        return fp, spend

    return run_async(scenario())


def recover_and_finish(root, *, stepped=False):
    """Recover whatever lives under ``root``; return (fp, spend, campaign_id)."""

    async def scenario():
        service = CampaignService(root)
        if stepped:
            register_stepped(service)
        (campaign_id,) = await service.recover()
        campaign = await service.wait(campaign_id)
        assert campaign.state.value == "done", campaign.error
        fp = fingerprint_json(campaign.engine)
        spend = campaign.runtime.report.assignments_committed
        await service.close()
        return fp, spend, campaign_id

    return run_async(scenario())


@pytest.mark.parametrize("mode", MODES)
def test_compacting_at_every_record_is_exact(mode, tmp_path):
    """``compact_every=1`` snapshots + rewrites at every safe point the
    policy can reach — the maximal-compaction differential."""
    fp, spend = reference_run(make_spec(mode), tmp_path)

    async def scenario():
        service = CampaignService(tmp_path / "compacted")
        spec = make_spec(mode, journal=JournalConfig(compact_every=1))
        campaign = await run_to_completion(service, spec, campaign_id="cmp")
        assert campaign.state.value == "done", campaign.error
        assert campaign.last_snapshot_seq > 0
        got_fp = fingerprint_json(campaign.engine)
        got_spend = campaign.runtime.report.assignments_committed
        await service.close()
        return got_fp, got_spend

    got_fp, got_spend = run_async(scenario())
    assert got_fp == fp
    assert got_spend == spend

    # The journal on disk really was compacted: record 1 is the snapshot.
    path = tmp_path / "compacted" / "cmp" / "journal.jsonl"
    header, events = Journal.read(path)
    assert header["version"] == 2
    assert events[0]["type"] == "snapshot"

    # And recovery from it fast-paths to the identical end state.
    got_fp, got_spend, _ = recover_and_finish(tmp_path / "compacted")
    assert got_fp == fp
    assert got_spend == spend


@pytest.mark.parametrize(
    "backend,kwargs",
    [
        ("monolithic", {}),
        ("sharded", {}),
        ("vectorized", {}),
        ("parallel", {"parallel_threshold": 0, "n_workers": 2}),
    ],
)
def test_compacted_recovery_is_exact_on_every_backend(backend, kwargs, tmp_path):
    fp, spend = reference_run(make_spec("instant", backend=backend, **kwargs), tmp_path)

    async def scenario():
        service = CampaignService(tmp_path / "compacted")
        spec = make_spec(
            "instant",
            backend=backend,
            journal=JournalConfig(compact_every=2),
            **kwargs,
        )
        campaign = await run_to_completion(service, spec, campaign_id="cmp")
        assert campaign.state.value == "done", campaign.error
        await service.close()

    run_async(scenario())
    got_fp, got_spend, _ = recover_and_finish(tmp_path / "compacted")
    assert got_fp == fp
    assert got_spend == spend


@pytest.mark.parametrize("mode", MODES)
def test_crash_at_any_boundary_of_a_compacted_journal(mode, tmp_path):
    """Truncate the compacted journal at every record boundary (and torn
    mid-record): recovery must fast-path from the snapshot, replay the
    surviving tail, and finish byte-identical to the uncompacted run."""
    fp, spend = reference_run(make_spec(mode), tmp_path)

    async def compacting_run():
        service = CampaignService(tmp_path / "compacted")
        # Large enough that the last snapshot leaves a real tail behind.
        spec = make_spec(mode, journal=JournalConfig(compact_every=8))
        campaign = await run_to_completion(service, spec, campaign_id="cmp")
        assert campaign.state.value == "done", campaign.error
        await service.close()

    run_async(compacting_run())
    src = tmp_path / "compacted" / "cmp" / "journal.jsonl"
    journal_bytes = src.read_bytes()
    offsets = journal_record_offsets(src)
    cuts = offsets[:-1] + [offsets[-1] - 7]  # every boundary + a torn tail
    for i, cut in enumerate(cuts):
        root = tmp_path / f"crashed-{i}"
        campaign_dir = root / "cmp"
        campaign_dir.mkdir(parents=True)
        (campaign_dir / "journal.jsonl").write_bytes(journal_bytes[:cut])
        got_fp, got_spend, _ = recover_and_finish(root)
        assert got_fp == fp, f"{mode}: fingerprint diverged at cut {i}"
        assert got_spend == spend, f"{mode}: spend diverged at cut {i}"


def test_on_demand_compact_of_a_running_campaign(tmp_path):
    fp, spend = reference_run(make_spec("instant", n_clusters=6), tmp_path)

    async def scenario():
        service = CampaignService(tmp_path / "live")
        register_stepped(service)
        campaign = await service.create(
            make_spec("instant", n_clusters=6, kind="stepped-in-memory"),
            campaign_id="live",
        )
        while campaign.runtime.report.n_completions < 3:
            await asyncio.sleep(0)
        await service.compact("live")
        assert campaign.last_snapshot_seq > 0
        status = campaign.status()
        assert status["last_snapshot_seq"] == campaign.last_snapshot_seq
        assert status["journal_bytes"] > 0
        await service.wait("live")
        assert campaign.state.value == "done", campaign.error
        got_fp = fingerprint_json(campaign.engine)
        got_spend = campaign.runtime.report.assignments_committed
        await service.close()
        return got_fp, got_spend, campaign.last_snapshot_seq

    got_fp, got_spend, snap_seq = run_async(scenario())
    assert got_fp == fp
    assert got_spend == spend

    # The on-disk journal was rewritten around the snapshot...
    _, events = Journal.read(tmp_path / "live" / "live" / "journal.jsonl")
    assert events[0]["type"] == "snapshot"
    assert events[0]["seq"] == snap_seq
    # ...and recovery from it still lands on the reference state.
    got_fp, got_spend, _ = recover_and_finish(tmp_path / "live", stepped=True)
    assert got_fp == fp
    assert got_spend == spend


def test_compact_while_paused_and_quiescent(tmp_path):
    """A paused campaign with nothing in flight is parked at the gate;
    ``compact`` pokes it through one safe point without resuming."""
    fp, _ = reference_run(make_spec("instant", n_clusters=6), tmp_path)

    async def scenario():
        service = CampaignService(tmp_path / "paused")
        register_stepped(service)
        campaign = await service.create(
            make_spec("instant", n_clusters=6, kind="stepped-in-memory"),
            campaign_id="p",
        )
        while campaign.client.n_outstanding_hits == 0:
            await asyncio.sleep(0)
        service.pause("p")
        while campaign.client.n_outstanding_hits > 0:
            await asyncio.sleep(0)
        for _ in range(20):  # let the runtime park at the gate
            await asyncio.sleep(0)
        await service.compact("p")
        assert campaign.last_snapshot_seq > 0
        assert campaign.state.value == "paused"  # poking must not resume
        issued_before = campaign.runtime.report.assignments_committed
        for _ in range(20):
            await asyncio.sleep(0)
        assert campaign.runtime.report.assignments_committed == issued_before
        service.resume("p")
        await service.wait("p")
        assert campaign.state.value == "done", campaign.error
        got_fp = fingerprint_json(campaign.engine)
        await service.close()
        return got_fp

    assert run_async(scenario()) == fp


def test_pause_requests_compaction_for_opted_in_campaigns(tmp_path):
    async def scenario():
        service = CampaignService(tmp_path / "root")
        register_stepped(service)
        campaign = await service.create(
            make_spec(
                "instant",
                n_clusters=6,
                kind="stepped-in-memory",
                journal=JournalConfig(compact_every=10_000),
            ),
            campaign_id="p",
        )
        while campaign.runtime.report.n_completions < 2:
            await asyncio.sleep(0)
        assert campaign.last_snapshot_seq == 0  # threshold far away
        service.pause("p")
        # In-flight completions keep the loop moving past safe points.
        while campaign.last_snapshot_seq == 0:
            await asyncio.sleep(0)
        service.resume("p")
        await service.wait("p")
        assert campaign.state.value == "done", campaign.error
        await service.close()

    run_async(scenario())


def test_compact_after_completion_reopens_the_journal(tmp_path):
    fp, spend = reference_run(make_spec("rounds"), tmp_path)

    async def scenario():
        service = CampaignService(tmp_path / "done")
        campaign = await run_to_completion(
            service, make_spec("rounds"), campaign_id="d"
        )
        assert campaign.last_snapshot_seq == 0  # never compacted while live
        await service.compact("d")
        assert campaign.last_snapshot_seq > 0
        assert campaign._journal.closed  # closed again after the rewrite
        await service.close()

    run_async(scenario())
    _, events = Journal.read(tmp_path / "done" / "d" / "journal.jsonl")
    assert events[0]["type"] == "snapshot"
    got_fp, got_spend, _ = recover_and_finish(tmp_path / "done")
    assert got_fp == fp
    assert got_spend == spend


def test_compact_refuses_failed_campaigns(tmp_path):
    async def scenario():
        service = CampaignService(tmp_path / "root")
        # Unscripted answers: the in-memory backend raises, the campaign fails.
        spec = make_spec("instant", extra_options={"answers": []})
        campaign = await service.create(spec, campaign_id="f")
        await service.wait("f")
        assert campaign.state.value == "failed"
        with pytest.raises(RuntimeError, match="failed"):
            await service.compact("f")
        await service.close()

    run_async(scenario())


def test_recovering_a_compacted_finished_campaign_is_pure_replay(tmp_path):
    async def first_life(root):
        service = CampaignService(root)
        spec = make_spec("instant", journal=JournalConfig(compact_every=3))
        campaign = await run_to_completion(service, spec, campaign_id="c")
        assert campaign.state.value == "done", campaign.error
        fp = fingerprint_json(campaign.engine)
        await service.close()
        return fp

    root = tmp_path / "root"
    fp = run_async(first_life(root))
    journal_path = root / "c" / "journal.jsonl"
    before = journal_path.read_bytes()
    got_fp, _, _ = recover_and_finish(root)
    assert got_fp == fp
    # A finished campaign's recovery journals nothing new.
    assert journal_path.read_bytes() == before


def test_spec_journal_knobs_reach_the_journal(tmp_path):
    async def scenario():
        service = CampaignService(tmp_path / "root")
        campaign = await run_to_completion(
            service,
            make_spec("instant", journal=JournalConfig(fsync_every=1)),
            campaign_id="c",
        )
        assert campaign._journal._fsync_every == 1
        await service.close()

    run_async(scenario())
