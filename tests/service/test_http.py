"""The HTTP control surface: routes, status codes, and error bodies."""

from __future__ import annotations

import asyncio
import json

from repro.service import CampaignHTTPServer, CampaignService

from ..aio import run_async
from .helpers import make_spec, register_stepped


async def http_request(host, port, method, path, body: str = ""):
    reader, writer = await asyncio.open_connection(host, port)
    payload = body.encode("utf-8")
    writer.write(
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n".encode("ascii") + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, doc = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), json.loads(doc)


def run_with_server(tmp_path, scenario):
    """Run ``scenario(service, request)`` against a live server."""
    async def main():
        service = CampaignService(tmp_path)
        register_stepped(service)
        server = CampaignHTTPServer(service)
        host, port = await server.start()

        async def request(method, path, body=""):
            return await http_request(host, port, method, path, body)

        try:
            return await scenario(service, request)
        finally:
            await server.stop()
            await service.close()

    return run_async(main())


def test_create_inspect_list_lifecycle(tmp_path):
    async def scenario(service, request):
        status, created = await request(
            "POST", "/campaigns", make_spec("instant").to_json()
        )
        assert status == 201
        cid = created["campaign_id"]
        assert created["state"] == "running"
        assert created["n_pairs"] > 0

        status, listed = await request("GET", "/campaigns")
        assert status == 200
        assert [c["campaign_id"] for c in listed["campaigns"]] == [cid]

        await service.wait(cid)
        status, snap = await request("GET", f"/campaigns/{cid}")
        assert status == 200
        assert snap["state"] == "done"
        assert snap["n_labeled"] == snap["n_pairs"]
        # trailing slash resolves to the same route
        status, _ = await request("GET", f"/campaigns/{cid}/")
        assert status == 200

    run_with_server(tmp_path, scenario)


def test_pause_resume_cancel_actions(tmp_path):
    async def scenario(service, request):
        _, created = await request(
            "POST",
            "/campaigns",
            make_spec("instant", n_clusters=12, kind="stepped-in-memory").to_json(),
        )
        cid = created["campaign_id"]
        status, paused = await request("POST", f"/campaigns/{cid}/pause")
        assert (status, paused["state"]) == (200, "paused")
        status, resumed = await request("POST", f"/campaigns/{cid}/resume")
        assert (status, resumed["state"]) == (200, "running")
        status, cancelled = await request("POST", f"/campaigns/{cid}/cancel")
        assert (status, cancelled["state"]) == (200, "cancelled")

    run_with_server(tmp_path, scenario)


def test_error_statuses(tmp_path):
    async def scenario(service, request):
        # 400: body is not a spec
        status, body = await request("POST", "/campaigns", "{not json")
        assert status == 400 and "invalid campaign spec" in body["error"]
        # 400: spec is valid JSON but an unregistered platform kind
        bad = json.loads(make_spec("instant").to_json())
        bad["platform"]["kind"] = "no-such-kind"
        status, body = await request("POST", "/campaigns", json.dumps(bad))
        assert status == 400 and "no platform client factory" in body["error"]
        # 404: unknown campaign / unknown action / unknown route
        status, _ = await request("GET", "/campaigns/nope")
        assert status == 404
        status, _ = await request("POST", "/campaigns/nope/pause")
        assert status == 404
        status, _ = await request("GET", "/not-a-route")
        assert status == 404
        # 405: wrong method
        status, _ = await request("DELETE", "/campaigns")
        assert status == 405
        _, created = await request(
            "POST", "/campaigns", make_spec("instant").to_json()
        )
        cid = created["campaign_id"]
        status, _ = await request("GET", f"/campaigns/{cid}/pause")
        assert status == 405
        status, body = await request("POST", f"/campaigns/{cid}/explode")
        assert status == 404 and "unknown action" in body["error"]

    run_with_server(tmp_path, scenario)


def test_compact_action(tmp_path):
    async def scenario(service, request):
        # A spec with journal knobs round-trips through the HTTP create body.
        # batch_size=1 gives the journal enough per-pair records that the
        # snapshot rewrite visibly shrinks it.
        spec_doc = json.loads(make_spec("instant", batch_size=1).to_json())
        spec_doc["journal"] = {"fsync_every": 4}
        status, created = await request("POST", "/campaigns", json.dumps(spec_doc))
        assert status == 201
        cid = created["campaign_id"]
        assert created["last_snapshot_seq"] == 0
        assert created["journal_bytes"] > 0
        campaign = await service.wait(cid)
        assert campaign.spec.journal.fsync_every == 4
        _, full = await request("GET", f"/campaigns/{cid}")

        status, snap = await request("POST", f"/campaigns/{cid}/compact")
        assert status == 200
        assert snap["state"] == "done"
        assert snap["last_snapshot_seq"] > 0
        # Compaction shrank the on-disk journal.
        assert 0 < snap["journal_bytes"] < full["journal_bytes"]

        # A cancelled campaign's journal may trail its in-memory state: 400.
        _, other = await request(
            "POST",
            "/campaigns",
            make_spec("instant", n_clusters=12, kind="stepped-in-memory").to_json(),
        )
        await request("POST", f"/campaigns/{other['campaign_id']}/cancel")
        status, body = await request(
            "POST", f"/campaigns/{other['campaign_id']}/compact"
        )
        assert status == 400 and "cancelled" in body["error"]

    run_with_server(tmp_path, scenario)


def test_malformed_request_line_is_400_not_a_crash(tmp_path):
    async def main():
        service = CampaignService(tmp_path)
        server = CampaignHTTPServer(service)
        host, port = await server.start()
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GARBAGE\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            assert b"400" in raw.split(b"\r\n", 1)[0]
            # the server still serves the next request
            status, _ = await http_request(host, port, "GET", "/campaigns")
            assert status == 200
        finally:
            await server.stop()
            await service.close()

    run_async(main())
