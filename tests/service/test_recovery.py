"""The tentpole acceptance: kill a campaign anywhere, replay, land identical.

Every test here runs the same differential: an uninterrupted campaign's
final engine state (labels, partition, frontier, published set, spend) is
the frozen reference; a campaign whose process "dies" — journal truncated
at a record boundary, torn mid-record, or the process actually SIGKILLed —
must recover to the byte-identical fingerprint with the same assignments
spent, across every runtime mode and engine backend.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.service import CampaignService
from repro.service.journal import Journal

from ..aio import run_async
from .helpers import (
    fingerprint_json,
    journal_record_offsets,
    make_spec,
    run_to_completion,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

MODES = ["instant", "rounds", "sequential", "hit-rounds", "flood"]


def reference_run(spec, tmp_path):
    """Uninterrupted campaign: (fingerprint_json, assignments, journal bytes)."""

    async def scenario():
        service = CampaignService(tmp_path / "reference")
        campaign = await run_to_completion(service, spec, campaign_id="ref")
        assert campaign.state.value == "done", campaign.error
        fp = fingerprint_json(campaign.engine)
        spend = campaign.runtime.report.assignments_committed
        await service.close()
        return fp, spend

    fp, spend = run_async(scenario())
    journal_bytes = (tmp_path / "reference" / "ref" / "journal.jsonl").read_bytes()
    return fp, spend, journal_bytes


def recover_truncated(journal_bytes, cut: int, tmp_path, tag: str):
    """Drop a truncated journal into a fresh root and recover it."""
    root = tmp_path / f"recovered-{tag}"
    campaign_dir = root / "crashed"
    campaign_dir.mkdir(parents=True)
    (campaign_dir / "journal.jsonl").write_bytes(journal_bytes[:cut])

    async def scenario():
        service = CampaignService(root)
        recovered = await service.recover()
        assert recovered == ["crashed"]
        campaign = await service.wait("crashed")
        assert campaign.state.value == "done", campaign.error
        assert campaign.recovered
        fp = fingerprint_json(campaign.engine)
        spend = campaign.runtime.report.assignments_committed
        await service.close()
        return fp, spend

    return run_async(scenario())


@pytest.mark.parametrize("mode", MODES)
def test_crash_at_any_record_boundary_resumes_identical(mode, tmp_path):
    spec = make_spec(mode)
    fp, spend, journal_bytes = reference_run(spec, tmp_path)
    offsets = journal_record_offsets(
        tmp_path / "reference" / "ref" / "journal.jsonl"
    )
    assert len(offsets) >= 4, "workload too small to exercise recovery"
    for i, cut in enumerate(offsets[:-1]):  # after header .. before last record
        got_fp, got_spend = recover_truncated(journal_bytes, cut, tmp_path, f"{i}")
        assert got_fp == fp, f"{mode}: fingerprint diverged at record {i}"
        # Replay never re-charges budget for journaled work; the resumed
        # run's total spend equals the uninterrupted run's.
        assert got_spend == spend, f"{mode}: spend diverged at record {i}"


@pytest.mark.parametrize(
    "backend,kwargs",
    [
        ("monolithic", {}),
        ("sharded", {}),
        ("vectorized", {}),
        ("parallel", {"parallel_threshold": 0, "n_workers": 2}),
        ("distributed", {"spawn_local_workers": 2}),
    ],
)
def test_torn_journal_resumes_identical_on_every_backend(backend, kwargs, tmp_path):
    spec = make_spec("instant", backend=backend, **kwargs)
    fp, spend, journal_bytes = reference_run(spec, tmp_path)
    offsets = journal_record_offsets(
        tmp_path / "reference" / "ref" / "journal.jsonl"
    )
    # Crash mid-write: half the records, then a torn partial JSON line.
    cut = offsets[len(offsets) // 2]
    torn = journal_bytes[:cut] + b'{"seq": 99999, "type": "comp'
    with pytest.warns(UserWarning, match="torn final line"):
        got_fp, got_spend = recover_truncated(torn, len(torn), tmp_path, backend)
    assert got_fp == fp
    assert got_spend == spend


KILLED_CHILD = textwrap.dedent(
    """
    import asyncio, os, sys
    from repro.service import CampaignService
    from repro.spec import CampaignSpec

    async def main():
        spec = CampaignSpec.from_json(sys.stdin.read())
        service = CampaignService(sys.argv[1])
        campaign = await service.create(spec, campaign_id="victim")
        # Run until a healthy amount of work is journaled, then die hard:
        # no flush, no close, no atexit — exactly a machine crash.
        while campaign._journal.next_seq < 12:
            await asyncio.sleep(0)
        os.kill(os.getpid(), 9)

    asyncio.run(main())
    """
)


def test_sigkilled_campaign_recovers_identical(tmp_path):
    """A real process, really SIGKILLed mid-campaign, really recovered."""
    spec = make_spec("instant")
    fp, spend, _ = reference_run(spec, tmp_path)

    root = tmp_path / "killed"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", KILLED_CHILD, str(root)],
        input=spec.to_json(),
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr

    journal_path = root / "victim" / "journal.jsonl"
    assert journal_path.exists(), "the child died before journaling anything"
    # The journal may end in a torn line (fsync batching + SIGKILL).
    import warnings

    async def scenario():
        service = CampaignService(root)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            recovered = await service.recover()
        assert recovered == ["victim"]
        campaign = await service.wait("victim")
        assert campaign.state.value == "done", campaign.error
        got = fingerprint_json(campaign.engine)
        got_spend = campaign.runtime.report.assignments_committed
        await service.close()
        return got, got_spend

    got_fp, got_spend = run_async(scenario())
    assert got_fp == fp
    assert got_spend == spend


def test_recovering_a_finished_campaign_is_a_pure_replay(tmp_path):
    """A journal of a completed campaign replays to DONE without any new
    platform traffic (journal_seq does not advance)."""
    spec = make_spec("instant")
    fp, spend, journal_bytes = reference_run(spec, tmp_path)
    root = tmp_path / "finished"
    (root / "c1").mkdir(parents=True)
    (root / "c1" / "journal.jsonl").write_bytes(journal_bytes)
    seq_before = len(journal_record_offsets(root / "c1" / "journal.jsonl"))

    async def scenario():
        service = CampaignService(root)
        await service.recover()
        campaign = await service.wait("c1")
        assert campaign.state.value == "done", campaign.error
        got = fingerprint_json(campaign.engine)
        await service.close()
        return got

    assert run_async(scenario()) == fp
    _, events = Journal.read(str(root / "c1" / "journal.jsonl"))
    assert len(events) + 1 == seq_before, "pure replay must not journal anew"
