"""Unit tests for the append-only campaign journal.

The contract under test: a torn **final** line is expected crash damage
(dropped with a warning, file repaired); any interior damage is real
corruption and must raise :class:`JournalCorruptError` with the byte
offset — silently skipping records would replay a different campaign.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.service.journal import JOURNAL_VERSION, Journal, JournalCorruptError

HEADER = {"type": "header", "version": JOURNAL_VERSION, "campaign_id": "c1", "spec": {}}


def write_journal(path, n_events: int = 4) -> Journal:
    journal = Journal(str(path))
    journal.append(HEADER)
    for i in range(n_events):
        journal.append({"type": "note", "text": f"event {i}"})
    journal.close()
    return journal


def test_append_stamps_monotonic_seq_and_reads_back(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = Journal(str(path))
    assert journal.append(HEADER) == 0
    assert journal.append({"type": "note", "text": "a"}) == 1
    assert journal.append({"type": "note", "text": "b"}) == 2
    assert journal.next_seq == 3
    journal.close()

    header, events = Journal.read(str(path))
    assert header["campaign_id"] == "c1"
    assert [e["seq"] for e in events] == [1, 2]
    assert [e["text"] for e in events] == ["a", "b"]


def test_reopened_journal_continues_the_sequence(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=2)
    journal = Journal(str(path))
    assert journal.next_seq == 3
    assert journal.append({"type": "note", "text": "later"}) == 3
    journal.close()
    _, events = Journal.read(str(path))
    assert [e["seq"] for e in events] == [1, 2, 3]


def test_torn_final_line_is_dropped_with_warning_and_repaired(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=3)
    good_size = os.path.getsize(path)
    with open(path, "ab") as fh:
        fh.write(b'{"seq": 5, "type": "note", "tex')  # crash mid-write

    with pytest.warns(UserWarning, match="torn final line"):
        header, events = Journal.read(str(path), repair=True)
    assert len(events) == 3
    # repair truncated the file back to the last durable record
    assert os.path.getsize(path) == good_size
    # a second read is clean: no warning, same records
    header2, events2 = Journal.read(str(path))
    assert events2 == events


def test_torn_final_line_without_repair_leaves_file_untouched(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=1)
    with open(path, "ab") as fh:
        fh.write(b"{bad")
    size = os.path.getsize(path)
    with pytest.warns(UserWarning, match="torn final line"):
        Journal.read(str(path), repair=False)
    assert os.path.getsize(path) == size


def test_interior_malformed_record_raises_with_offset(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=3)
    lines = open(path, "rb").read().splitlines(keepends=True)
    corrupt_offset = sum(len(l) for l in lines[:2])
    lines[2] = b'{"seq": 2, "type": "note", CORRUPT}\n'
    open(path, "wb").write(b"".join(lines))

    with pytest.raises(JournalCorruptError, match="malformed record") as info:
        Journal.read(str(path))
    assert info.value.offset == corrupt_offset
    assert info.value.line_number == 3
    assert info.value.path == str(path)


def test_sequence_gap_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=3)
    lines = open(path, "rb").read().splitlines(keepends=True)
    del lines[2]  # drop an interior record: seq 1, <gap>, seq 3
    open(path, "wb").write(b"".join(lines))
    with pytest.raises(JournalCorruptError, match="sequence discontinuity"):
        Journal.read(str(path))


def test_blank_interior_line_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=2)
    lines = open(path, "rb").read().splitlines(keepends=True)
    lines.insert(1, b"\n")
    open(path, "wb").write(b"".join(lines))
    with pytest.raises(JournalCorruptError, match="blank interior line"):
        Journal.read(str(path))


def test_missing_header_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    with open(path, "wb") as fh:
        fh.write(json.dumps({"seq": 0, "type": "note"}).encode() + b"\n")
    with pytest.raises(JournalCorruptError, match="not a campaign header"):
        Journal.read(str(path))


def test_unsupported_version_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    record = dict(HEADER, version=999, seq=0)
    with open(path, "wb") as fh:
        fh.write(json.dumps(record).encode() + b"\n")
    with pytest.raises(JournalCorruptError, match="unsupported journal version"):
        Journal.read(str(path))


def test_unknown_event_type_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = Journal(str(path))
    journal.append(HEADER)
    journal.append({"type": "note"})
    journal.close()
    lines = open(path, "rb").read().splitlines(keepends=True)
    lines[1] = b'{"seq": 1, "type": "mystery"}\n'
    open(path, "wb").write(b"".join(lines))
    with pytest.raises(JournalCorruptError, match="unknown record type"):
        Journal.read(str(path))


def test_empty_journal_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_bytes(b"")
    with pytest.raises(JournalCorruptError, match="no intact header"):
        Journal.read(str(path))


def test_fsync_every_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="fsync_every"):
        Journal(str(tmp_path / "journal.jsonl"), fsync_every=0)


def test_append_after_close_raises(tmp_path):
    journal = Journal(str(tmp_path / "journal.jsonl"))
    journal.close()
    with pytest.raises(ValueError, match="closed"):
        journal.append(HEADER)
