"""Unit tests for the append-only campaign journal.

The contract under test: a torn **final** line is expected crash damage
(dropped with a warning, file repaired); any interior damage is real
corruption and must raise :class:`JournalCorruptError` with the byte
offset — silently skipping records would replay a different campaign.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.service.journal import JOURNAL_VERSION, Journal, JournalCorruptError

HEADER = {"type": "header", "version": JOURNAL_VERSION, "campaign_id": "c1", "spec": {}}


def write_journal(path, n_events: int = 4) -> Journal:
    journal = Journal(str(path))
    journal.append(HEADER)
    for i in range(n_events):
        journal.append({"type": "note", "text": f"event {i}"})
    journal.close()
    return journal


def test_append_stamps_monotonic_seq_and_reads_back(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = Journal(str(path))
    assert journal.append(HEADER) == 0
    assert journal.append({"type": "note", "text": "a"}) == 1
    assert journal.append({"type": "note", "text": "b"}) == 2
    assert journal.next_seq == 3
    journal.close()

    header, events = Journal.read(str(path))
    assert header["campaign_id"] == "c1"
    assert [e["seq"] for e in events] == [1, 2]
    assert [e["text"] for e in events] == ["a", "b"]


def test_reopened_journal_continues_the_sequence(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=2)
    journal = Journal(str(path))
    assert journal.next_seq == 3
    assert journal.append({"type": "note", "text": "later"}) == 3
    journal.close()
    _, events = Journal.read(str(path))
    assert [e["seq"] for e in events] == [1, 2, 3]


def test_torn_final_line_is_dropped_with_warning_and_repaired(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=3)
    good_size = os.path.getsize(path)
    with open(path, "ab") as fh:
        fh.write(b'{"seq": 5, "type": "note", "tex')  # crash mid-write

    with pytest.warns(UserWarning, match="torn final line"):
        header, events = Journal.read(str(path), repair=True)
    assert len(events) == 3
    # repair truncated the file back to the last durable record
    assert os.path.getsize(path) == good_size
    # a second read is clean: no warning, same records
    header2, events2 = Journal.read(str(path))
    assert events2 == events


def test_torn_final_line_without_repair_leaves_file_untouched(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=1)
    with open(path, "ab") as fh:
        fh.write(b"{bad")
    size = os.path.getsize(path)
    with pytest.warns(UserWarning, match="torn final line"):
        Journal.read(str(path), repair=False)
    assert os.path.getsize(path) == size


def test_interior_malformed_record_raises_with_offset(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=3)
    lines = open(path, "rb").read().splitlines(keepends=True)
    corrupt_offset = sum(len(l) for l in lines[:2])
    lines[2] = b'{"seq": 2, "type": "note", CORRUPT}\n'
    open(path, "wb").write(b"".join(lines))

    with pytest.raises(JournalCorruptError, match="malformed record") as info:
        Journal.read(str(path))
    assert info.value.offset == corrupt_offset
    assert info.value.line_number == 3
    assert info.value.path == str(path)


def test_sequence_gap_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=3)
    lines = open(path, "rb").read().splitlines(keepends=True)
    del lines[2]  # drop an interior record: seq 1, <gap>, seq 3
    open(path, "wb").write(b"".join(lines))
    with pytest.raises(JournalCorruptError, match="sequence discontinuity"):
        Journal.read(str(path))


def test_blank_interior_line_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=2)
    lines = open(path, "rb").read().splitlines(keepends=True)
    lines.insert(1, b"\n")
    open(path, "wb").write(b"".join(lines))
    with pytest.raises(JournalCorruptError, match="blank interior line"):
        Journal.read(str(path))


def test_missing_header_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    with open(path, "wb") as fh:
        fh.write(json.dumps({"seq": 0, "type": "note"}).encode() + b"\n")
    with pytest.raises(JournalCorruptError, match="not a campaign header"):
        Journal.read(str(path))


def test_unsupported_version_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    record = dict(HEADER, version=999, seq=0)
    with open(path, "wb") as fh:
        fh.write(json.dumps(record).encode() + b"\n")
    with pytest.raises(JournalCorruptError, match="unsupported journal version"):
        Journal.read(str(path))


def test_unknown_event_type_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = Journal(str(path))
    journal.append(HEADER)
    journal.append({"type": "note"})
    journal.close()
    lines = open(path, "rb").read().splitlines(keepends=True)
    lines[1] = b'{"seq": 1, "type": "mystery"}\n'
    open(path, "wb").write(b"".join(lines))
    with pytest.raises(JournalCorruptError, match="unknown record type"):
        Journal.read(str(path))


def test_empty_journal_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_bytes(b"")
    with pytest.raises(JournalCorruptError, match="no intact header"):
        Journal.read(str(path))


def test_fsync_every_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="fsync_every"):
        Journal(str(tmp_path / "journal.jsonl"), fsync_every=0)


def test_append_after_close_raises(tmp_path):
    journal = Journal(str(tmp_path / "journal.jsonl"))
    journal.close()
    with pytest.raises(ValueError, match="closed"):
        journal.append(HEADER)


# ----------------------------------------------------------------------
# format v2: snapshot records + compaction
# ----------------------------------------------------------------------
def snapshot_record(journal: Journal) -> dict:
    """A minimal well-formed snapshot record for the journal's next slot."""
    return {"type": "snapshot", "last_seq": journal.next_seq - 1, "engine": {}}


def test_compact_drops_prefix_and_keeps_tail_seqs(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = Journal(str(path))
    journal.append(HEADER)
    for i in range(4):
        journal.append({"type": "note", "text": f"before {i}"})
    snap_seq = journal.append(snapshot_record(journal))
    journal.append({"type": "note", "text": "after"})
    dropped = journal.compact()
    assert dropped == 4
    # The journal stays appendable through the rewrite, seq uninterrupted.
    assert journal.append({"type": "note", "text": "post-compact"}) == snap_seq + 2
    journal.close()

    header, events = Journal.read(str(path))
    assert header["version"] == JOURNAL_VERSION
    assert [e["type"] for e in events] == ["snapshot", "note", "note"]
    assert [e["seq"] for e in events] == [snap_seq, snap_seq + 1, snap_seq + 2]
    # A reopened writer continues after the preserved tail.
    reopened = Journal(str(path))
    assert reopened.next_seq == snap_seq + 3
    reopened.close()


def test_compact_without_snapshot_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = Journal(str(path))
    journal.append(HEADER)
    journal.append({"type": "note", "text": "x"})
    with pytest.raises(ValueError, match="no snapshot"):
        journal.compact()
    journal.close()


def test_compact_is_idempotent(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = Journal(str(path))
    journal.append(HEADER)
    journal.append({"type": "note", "text": "x"})
    journal.append(snapshot_record(journal))
    assert journal.compact() == 1
    before = open(path, "rb").read()
    assert journal.compact() == 0
    journal.close()
    assert open(path, "rb").read() == before


def test_seq_jump_is_legal_only_for_a_leading_snapshot(tmp_path):
    path = tmp_path / "journal.jsonl"
    with open(path, "w") as fh:
        fh.write(json.dumps({"seq": 0, **HEADER}) + "\n")
        fh.write(json.dumps({"seq": 7, "type": "note", "text": "x"}) + "\n")
    with pytest.raises(JournalCorruptError, match="discontinuity"):
        Journal.read(str(path))


def test_seq_jump_after_the_snapshot_still_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    with open(path, "w") as fh:
        fh.write(json.dumps({"seq": 0, **HEADER}) + "\n")
        fh.write(
            json.dumps({"seq": 5, "type": "snapshot", "last_seq": 4}) + "\n"
        )
        fh.write(json.dumps({"seq": 9, "type": "note", "text": "x"}) + "\n")
    with pytest.raises(JournalCorruptError, match="discontinuity"):
        Journal.read(str(path))


def test_snapshot_last_seq_mismatch_is_corruption(tmp_path):
    path = tmp_path / "journal.jsonl"
    with open(path, "w") as fh:
        fh.write(json.dumps({"seq": 0, **HEADER}) + "\n")
        fh.write(
            json.dumps({"seq": 3, "type": "snapshot", "last_seq": 1}) + "\n"
        )
    with pytest.raises(JournalCorruptError, match="last_seq"):
        Journal.read(str(path))


def test_v1_journal_without_snapshots_still_reads(tmp_path):
    path = tmp_path / "journal.jsonl"
    v1_header = {**HEADER, "version": 1}
    with open(path, "w") as fh:
        fh.write(json.dumps({"seq": 0, **v1_header}) + "\n")
        fh.write(json.dumps({"seq": 1, "type": "note", "text": "x"}) + "\n")
    header, events = Journal.read(str(path))
    assert header["version"] == 1
    assert [e["seq"] for e in events] == [1]


def test_stray_compaction_tmp_is_removed_with_warning(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, n_events=1)
    tmp = str(path) + ".tmp"
    with open(tmp, "w") as fh:
        fh.write("half-written compaction\n")
    with pytest.warns(UserWarning, match="stray compaction temp"):
        journal = Journal(str(path))
    assert not os.path.exists(tmp)
    # The journal itself was untouched and continues normally.
    assert journal.append({"type": "note", "text": "later"}) == 2
    journal.close()


def test_crash_after_compact_rename_leaves_readable_journal(tmp_path):
    """The rename is the commit point: the rewritten file must parse on
    its own (a crash right after os.replace loses nothing)."""
    path = tmp_path / "journal.jsonl"
    journal = Journal(str(path))
    journal.append(HEADER)
    journal.append({"type": "note", "text": "dropped"})
    journal.append(snapshot_record(journal))
    journal.compact()
    journal.close()
    header, events = Journal.read(str(path))
    assert [e["type"] for e in events] == ["snapshot"]
    assert events[0]["last_seq"] == events[0]["seq"] - 1
