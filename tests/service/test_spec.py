"""CampaignSpec: the one campaign description every entry point accepts."""

from __future__ import annotations

import pytest

import repro
from repro import (
    AggregationConfig,
    CampaignSpec,
    EngineBackend,
    InstantDispatch,
    JournalConfig,
    PlatformConfig,
    RoundParallelDispatch,
    SequentialDispatch,
    SpecError,
)
from repro.core.cluster_graph import ConflictPolicy
from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import CandidatePair, make_pair
from repro.crowd.budget import BudgetPolicy, CostModel
from repro.crowd.campaign import run_transitive
from repro.crowd.latency import TimeoutPolicy
from repro.crowd.aggregation import WeightedAggregation
from repro.crowd.review import ApproveAll, EscalateOnLowConfidence
from repro.engine.async_dispatch import AsyncDispatch, CrowdRuntime, RuntimeMode
from repro.spec import SPEC_SCHEMA_VERSION

from ..aio import run_async

PAIRS = [(i, i + 1) for i in range(0, 10, 2)]
ENTITY_OF = {i: i // 2 for i in range(10)}


def full_spec() -> CampaignSpec:
    return CampaignSpec(
        order=[CandidatePair(make_pair(a, b), 0.7) for a, b in PAIRS],
        mode="rounds",
        policy=ConflictPolicy.FIRST_WINS,
        backend="sharded",
        shard_threshold=10,
        parallel_threshold=20,
        n_workers=2,
        budget=BudgetPolicy(
            max_cost=12.5, max_assignments=400, model=CostModel(price_per_assignment=0.05)
        ),
        timeout=TimeoutPolicy(hit_timeout=900.0, max_reissues=2),
        review=ApproveAll(feedback="thanks"),
        max_rounds=50,
        journal=JournalConfig(fsync_every=2, compact_every=16),
        platform=PlatformConfig(
            kind="in-memory", batch_size=7, n_assignments=2, options={"seed": 3}
        ),
    )


def test_json_round_trip_is_exact():
    spec = full_spec()
    restored = CampaignSpec.from_json(spec.to_json())
    assert restored == spec
    # and canonical: serialising again gives identical bytes
    assert restored.to_json() == spec.to_json()


def test_to_dict_carries_the_schema_version():
    assert full_spec().to_dict()["version"] == SPEC_SCHEMA_VERSION


def test_unknown_schema_version_rejected():
    data = full_spec().to_dict()
    data["version"] = 999
    with pytest.raises(SpecError, match="unsupported spec schema version"):
        CampaignSpec.from_dict(data)


def test_non_scalar_pair_objects_rejected_at_serialization():
    spec = CampaignSpec(order=[((1, 2), (3, 4))])  # tuple object ids
    with pytest.raises(SpecError, match="not JSON-serializable"):
        spec.to_dict()


def test_serial_mode_is_not_speccable():
    with pytest.raises(SpecError, match="SERIAL"):
        CampaignSpec(order=PAIRS, mode="serial")


def test_invalid_mode_rejected_eagerly():
    with pytest.raises(ValueError):
        CampaignSpec(order=PAIRS, mode="warp-speed")


def test_order_normalises_tuples_pairs_and_candidates():
    spec = CampaignSpec(
        order=[(1, 2), make_pair(3, 4), CandidatePair(make_pair(5, 6), 0.9)]
    )
    assert all(isinstance(item, CandidatePair) for item in spec.order)
    assert [(p.left, p.right) for p in spec.pairs] == [(1, 2), (3, 4), (5, 6)]
    with pytest.raises(SpecError, match="order items"):
        CampaignSpec(order=[42])


def test_journal_config_round_trips_and_defaults():
    spec = full_spec()
    restored = CampaignSpec.from_json(spec.to_json())
    assert restored.journal == JournalConfig(fsync_every=2, compact_every=16)
    # Specs serialized before the journal block existed still load.
    data = spec.to_dict()
    del data["journal"]
    assert CampaignSpec.from_dict(data).journal == JournalConfig()
    # A bare dict in the constructor normalises to JournalConfig.
    assert CampaignSpec(
        order=PAIRS, journal={"compact_every": 5}
    ).journal == JournalConfig(compact_every=5)


@pytest.mark.parametrize("field", ["fsync_every", "compact_every"])
@pytest.mark.parametrize("value", [0, -3])
def test_journal_config_rejects_non_positive_intervals(field, value):
    with pytest.raises(SpecError, match=field):
        JournalConfig(**{field: value})


def test_engine_backend_enum_is_accepted_everywhere():
    assert EngineBackend.VECTORIZED == "vectorized"
    spec = CampaignSpec(order=PAIRS, backend=EngineBackend.MONOLITHIC)
    assert spec.backend == "monolithic"  # normalised to the string value
    engine = spec.build_engine()
    assert engine.backend == "monolithic"
    engine.close()


def test_build_engine_honours_spec_knobs():
    spec = CampaignSpec(order=PAIRS, mode="sequential", backend="sharded")
    engine = spec.build_engine()
    assert engine.backend == "sharded"
    engine.close()


def test_sync_dispatch_strategies_accept_spec():
    oracle = GroundTruthOracle(ENTITY_OF)
    spec = CampaignSpec(order=PAIRS, policy=ConflictPolicy.STRICT)
    plain = SequentialDispatch().run(PAIRS_AS_PAIRS(), oracle)
    for dispatch in (
        SequentialDispatch(spec=spec),
        RoundParallelDispatch(spec=spec),
    ):
        result = dispatch.run(PAIRS_AS_PAIRS(), oracle)
        assert result.labels() == plain.labels()
    run = InstantDispatch(spec=spec).run(PAIRS_AS_PAIRS(), oracle)
    assert run.result.labels() == plain.labels()


def PAIRS_AS_PAIRS():
    return [make_pair(a, b) for a, b in PAIRS]


def test_async_dispatch_and_runtime_accept_spec():
    oracle = GroundTruthOracle(ENTITY_OF)
    spec = CampaignSpec(order=PAIRS, mode="rounds")

    async def scenario():
        dispatch = AsyncDispatch(spec=spec)
        return await dispatch.run_async(PAIRS_AS_PAIRS(), oracle)

    result = run_async(scenario())
    reference = SequentialDispatch().run(PAIRS_AS_PAIRS(), oracle)
    assert result.labels() == reference.labels()


def test_crowd_runtime_resolves_policies_from_spec():
    spec = full_spec()
    from repro.crowd.clients import SimulatedPlatformClient

    oracle = GroundTruthOracle(ENTITY_OF)
    engine = spec.build_engine()
    runtime = CrowdRuntime(
        engine, SimulatedPlatformClient.for_oracle(oracle), spec=spec
    )
    assert runtime._mode is RuntimeMode.ROUNDS
    run_async(runtime.run())
    assert engine.is_done


def test_run_transitive_accepts_spec(crowd_platform_factory=None):
    from repro.crowd.latency import FixedLatency
    from repro.crowd.platform import SimulatedPlatform
    from repro.crowd.worker import make_worker_pool

    oracle = GroundTruthOracle(ENTITY_OF)

    def platform():
        return SimulatedPlatform(
            workers=make_worker_pool(4, seed=0),
            truth=oracle,
            latency=FixedLatency(),
            batch_size=3,
            n_assignments=3,
            seed=0,
        )

    spec = CampaignSpec(order=PAIRS, mode="instant")
    via_spec = run_transitive(platform=platform(), spec=spec)
    legacy = run_transitive(PAIRS_AS_PAIRS(), platform(), True)
    assert via_spec.labels == legacy.labels
    assert via_spec.n_hits == legacy.n_hits


def test_review_policy_encoding_rejects_custom_policies():
    class CustomReview:
        def review(self, completion):  # pragma: no cover - shape only
            return []

    spec_dict_ok = CampaignSpec(order=PAIRS, review=ApproveAll()).to_dict()
    assert spec_dict_ok["review"] == {"kind": "approve-all", "feedback": "Thank you!"}
    with pytest.raises(SpecError):
        CampaignSpec(order=PAIRS, review=CustomReview()).to_dict()


def test_curated_public_api():
    # every curated name resolves ...
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert missing == []
    # ... the service layer is first-class ...
    for name in ("CampaignSpec", "CampaignService", "CampaignHTTPServer", "Journal"):
        assert name in repro.__all__
    # ... and the deprecated facades are importable but uncurated.
    for name in ("SequentialLabeler", "ParallelLabeler", "InstantLabeler"):
        assert hasattr(repro, name)
        assert name not in repro.__all__


@pytest.mark.parametrize(
    "name", ["SequentialLabeler", "ParallelLabeler", "InstantLabeler"]
)
def test_legacy_labelers_warn_on_construction(name):
    cls = getattr(repro, name)
    with pytest.warns(DeprecationWarning, match="deprecated"):
        cls()


def test_label_wrappers_do_not_warn():
    import warnings

    oracle = GroundTruthOracle(ENTITY_OF)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        repro.label_sequential(PAIRS_AS_PAIRS(), oracle)
        repro.label_parallel(PAIRS_AS_PAIRS(), oracle)


class TestOrderingField:
    def test_default_is_static(self):
        assert CampaignSpec(order=PAIRS).ordering == "static"

    def test_expected_value_requires_sequential_mode(self):
        with pytest.raises(SpecError, match="sequential"):
            CampaignSpec(order=PAIRS, mode="rounds", ordering="expected-value")

    def test_unknown_ordering_rejected(self):
        with pytest.raises(SpecError, match="ordering"):
            CampaignSpec(order=PAIRS, ordering="psychic")

    def test_ordering_round_trips(self):
        spec = CampaignSpec(
            order=PAIRS, mode="sequential", ordering="expected-value"
        )
        restored = CampaignSpec.from_json(spec.to_json())
        assert restored.ordering == "expected-value"
        assert restored == spec


class TestAggregationConfig:
    def test_default_is_flat_majority_with_no_runtime_aggregator(self):
        spec = CampaignSpec(order=PAIRS)
        assert spec.aggregation == AggregationConfig()
        assert spec.make_aggregation() is None

    def test_weighted_config_builds_a_fresh_aggregator_each_call(self):
        spec = CampaignSpec(
            order=PAIRS,
            aggregation=AggregationConfig(
                kind="weighted", prior_accuracy=0.8, min_votes=2
            ),
        )
        first = spec.make_aggregation()
        second = spec.make_aggregation()
        assert isinstance(first, WeightedAggregation)
        assert first is not second
        assert first.tracker is not second.tracker
        assert first.tracker.prior_accuracy == 0.8
        assert first.min_votes == 2

    def test_mapping_in_constructor_normalises(self):
        spec = CampaignSpec(order=PAIRS, aggregation={"kind": "weighted"})
        assert spec.aggregation == AggregationConfig(kind="weighted")

    def test_round_trips_through_json(self):
        spec = CampaignSpec(
            order=PAIRS,
            aggregation=AggregationConfig(
                kind="weighted",
                prior_accuracy=0.75,
                prior_strength=4.0,
                agreement_weight=0.25,
                min_votes=2,
            ),
        )
        restored = CampaignSpec.from_json(spec.to_json())
        assert restored.aggregation == spec.aggregation
        assert restored == spec

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"kind": "alchemy"}, "aggregation kind"),
            ({"prior_accuracy": 0.0}, "prior_accuracy"),
            ({"prior_strength": -1.0}, "prior_strength"),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs, match):
        with pytest.raises(SpecError, match=match):
            AggregationConfig(**kwargs)


class TestSchemaVersion2:
    def test_escalation_review_round_trips(self):
        spec = CampaignSpec(
            order=PAIRS,
            review=EscalateOnLowConfidence(min_confidence=0.8, feedback="check"),
        )
        restored = CampaignSpec.from_json(spec.to_json())
        assert isinstance(restored.review, EscalateOnLowConfidence)
        assert restored.review.min_confidence == 0.8
        assert restored.review.feedback == "check"

    def test_version_1_documents_decode_with_pre_2_defaults(self):
        data = CampaignSpec(order=PAIRS).to_dict()
        data["version"] = 1
        del data["ordering"]
        del data["aggregation"]
        spec = CampaignSpec.from_dict(data)
        assert spec.ordering == "static"
        assert spec.aggregation == AggregationConfig()

    def test_current_documents_carry_version_3(self):
        assert SPEC_SCHEMA_VERSION == 3
        data = CampaignSpec(order=PAIRS).to_dict()
        assert data["version"] == 3
        assert data["ordering"] == "static"
        assert data["aggregation"]["kind"] == "majority"
        assert data["workers"] is None
        assert data["spawn_local_workers"] is None

    def test_version_2_documents_decode_without_distributed_knobs(self):
        data = CampaignSpec(order=PAIRS).to_dict()
        data["version"] = 2
        del data["workers"]
        del data["spawn_local_workers"]
        spec = CampaignSpec.from_dict(data)
        assert spec.workers is None
        assert spec.spawn_local_workers is None

    def test_workers_round_trip_and_validation(self):
        spec = CampaignSpec(
            order=PAIRS,
            backend="distributed",
            workers=["alpha:9000", "beta:9001"],
            spawn_local_workers=2,
        )
        assert spec.workers == ("alpha:9000", "beta:9001")
        restored = CampaignSpec.from_json(spec.to_json())
        assert restored.workers == ("alpha:9000", "beta:9001")
        assert restored.spawn_local_workers == 2
        assert restored == spec
        with pytest.raises(SpecError):
            CampaignSpec(order=PAIRS, workers="alpha:9000")
        with pytest.raises(SpecError):
            CampaignSpec(order=PAIRS, workers=["no-port"])
