"""Shared campaign fixtures for the service-layer tests.

One deterministic workload, scripted end to end: three entity clusters,
every candidate pair's crowd answer written into the spec's platform
options, so any two runs of the same spec — uninterrupted, truncated,
killed, or replayed — must land on the same engine state.
"""

from __future__ import annotations

import asyncio
import json
from typing import List, Optional

from repro.core.pairs import Label, Pair
from repro.crowd.clients import (
    InMemoryCrowdBackend,
    ManualClock,
    PollingPlatformClient,
)
from repro.spec import CampaignSpec, JournalConfig, PlatformConfig


def cluster_workload(
    n_clusters: int = 3, cluster_size: int = 5, window: int = 6
) -> tuple[list, list]:
    """(pairs, answers) over ``n_clusters`` blocks of consecutive ints."""
    members = {
        obj: ci
        for ci in range(n_clusters)
        for obj in range(ci * cluster_size, (ci + 1) * cluster_size)
    }
    objects = sorted(members)
    pairs = [
        (a, b)
        for i, a in enumerate(objects)
        for b in objects[i + 1 :]
        if b - a <= window
    ]
    answers = [
        [a, b, "matching" if members[a] == members[b] else "non-matching"]
        for a, b in pairs
    ]
    return pairs, answers


def make_spec(
    mode: str = "instant",
    *,
    backend: str = "auto",
    batch_size: int = 4,
    n_assignments: int = 1,
    n_clusters: int = 3,
    parallel_threshold: Optional[int] = None,
    n_workers: Optional[int] = None,
    spawn_local_workers: Optional[int] = None,
    extra_options: Optional[dict] = None,
    kind: str = "in-memory",
    journal: Optional[JournalConfig] = None,
) -> CampaignSpec:
    pairs, answers = cluster_workload(n_clusters=n_clusters)
    options = {"answers": answers}
    if extra_options:
        options.update(extra_options)
    return CampaignSpec(
        order=pairs,
        mode=mode,
        backend=backend,
        parallel_threshold=parallel_threshold,
        n_workers=n_workers,
        spawn_local_workers=spawn_local_workers,
        journal=journal or JournalConfig(),
        platform=PlatformConfig(
            kind=kind,
            batch_size=batch_size,
            n_assignments=n_assignments,
            options=options,
        ),
    )


def stepped_in_memory_factory(spec: CampaignSpec):
    """The in-memory platform, but yielding to the event loop every poll.

    The built-in ``in-memory`` client never suspends (every await resolves
    synchronously off the manual clock), so an entire campaign runs inside
    one task step and a test cannot pause/cancel/observe it mid-flight.
    This factory inserts one real loop yield per poll cycle, making the
    campaign interleave deterministically with the test coroutine.
    """
    options = dict(spec.platform.options)
    answers = {
        Pair(a, b): Label(label) for a, b, label in options.get("answers", [])
    }
    clock = ManualClock()
    backend = InMemoryCrowdBackend(
        answer_fn=lambda pair: answers[pair],
        clock=clock.now,
        latency=lambda rng: 1.0,
        seed=0,
    )

    async def stepped_sleep(seconds: float) -> None:
        await clock.sleep(seconds)
        # Several yields per poll: an HTTP round-trip (a handful of loop
        # ticks) always lands mid-campaign, never after it.
        for _ in range(5):
            await asyncio.sleep(0)

    return PollingPlatformClient(
        backend,
        batch_size=spec.platform.batch_size,
        n_assignments=spec.platform.n_assignments,
        poll_interval=1.0,
        clock=clock.now,
        sleep=stepped_sleep,
    )


def register_stepped(service) -> None:
    service.register_client_factory("stepped-in-memory", stepped_in_memory_factory)


def fingerprint_json(engine) -> str:
    """Canonical byte form of the engine state for differential asserts."""
    return json.dumps(engine.state_fingerprint(), sort_keys=True)


async def run_to_completion(service, spec, campaign_id=None):
    """Create a campaign and await it; returns the finished Campaign."""
    campaign = await service.create(spec, campaign_id=campaign_id)
    return await service.wait(campaign.campaign_id)


def journal_record_offsets(path: str) -> List[int]:
    """Byte offsets of each record boundary (end of line N), header included."""
    offsets = []
    pos = 0
    with open(path, "rb") as fh:
        for line in fh:
            pos += len(line)
            offsets.append(pos)
    return offsets
