"""CampaignService lifecycle: tenancy, pause/resume, cancel, recovery edges."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.pairs import Label, Pair
from repro.service import CampaignService, CampaignState
from repro.service.journal import Journal
from repro.spec import CampaignSpec, PlatformConfig

from ..aio import run_async
from .helpers import (
    cluster_workload,
    make_spec,
    register_stepped,
    run_to_completion,
)


def test_campaign_runs_to_done_with_full_status(tmp_path):
    async def scenario():
        service = CampaignService(tmp_path)
        campaign = await run_to_completion(service, make_spec("instant"))
        status = campaign.status()
        await service.close()
        return status

    status = run_async(scenario())
    assert status["state"] == "done"
    assert status["n_labeled"] == status["n_pairs"]
    assert status["n_crowdsourced"] + status["n_deduced"] == status["n_pairs"]
    assert status["n_deduced"] > 0, "transitivity must deduce something"
    assert status["n_outstanding_hits"] == 0
    assert status["replaying"] is False
    assert status["journal_seq"] > 0
    assert status["error"] is None


def test_tenants_are_isolated(tmp_path):
    """Concurrent campaigns with contradictory answer scripts must not
    cross-apply: each engine's labels follow its own script exactly."""
    pairs, answers = cluster_workload()
    all_matching = [[a, b, "matching"] for a, b, _ in answers]
    all_non_matching = [[a, b, "non-matching"] for a, b, _ in answers]

    def spec_for(script):
        return CampaignSpec(
            order=pairs,
            mode="instant",
            platform=PlatformConfig(
                kind="in-memory",
                batch_size=4,
                n_assignments=1,
                options={"answers": script},
            ),
        )

    async def scenario():
        service = CampaignService(tmp_path)
        a = await service.create(spec_for(all_matching))
        b = await service.create(spec_for(all_non_matching))
        await service.wait(a.campaign_id)
        await service.wait(b.campaign_id)
        labels_a = set(a.engine.labeled.values())
        labels_b = set(b.engine.labeled.values())
        ids = [c["campaign_id"] for c in service.list()]
        await service.close()
        return labels_a, labels_b, ids, a.state, b.state

    labels_a, labels_b, ids, state_a, state_b = run_async(scenario())
    assert state_a is CampaignState.DONE and state_b is CampaignState.DONE
    assert labels_a == {Label.MATCHING}
    assert labels_b == {Label.NON_MATCHING}
    assert ids == ["c0001", "c0002"]


def test_tenants_journal_into_separate_files(tmp_path):
    async def scenario():
        service = CampaignService(tmp_path)
        a = await run_to_completion(service, make_spec("instant"))
        b = await run_to_completion(service, make_spec("rounds"))
        paths = (a.journal_path, b.journal_path)
        await service.close()
        return paths

    path_a, path_b = run_async(scenario())
    assert path_a != path_b
    header_a, _ = Journal.read(path_a)
    header_b, _ = Journal.read(path_b)
    assert header_a["campaign_id"] != header_b["campaign_id"]
    assert header_a["spec"]["mode"] == "instant"
    assert header_b["spec"]["mode"] == "rounds"


def _issue_count(campaign) -> int:
    campaign._journal.flush()
    _, events = Journal.read(campaign.journal_path)
    return sum(1 for e in events if e["type"] == "issue")


def test_pause_stops_issuance_but_applies_inflight_completions(tmp_path):
    async def scenario():
        service = CampaignService(tmp_path)
        register_stepped(service)
        campaign = await service.create(
            make_spec("instant", n_clusters=6, kind="stepped-in-memory")
        )
        # Let the campaign issue its first HITs.
        while campaign.client.n_outstanding_hits == 0:
            await asyncio.sleep(0)
        service.pause(campaign.campaign_id)
        assert campaign.state is CampaignState.PAUSED
        issues_at_pause = _issue_count(campaign)
        completions_at_pause = campaign.runtime.report.n_completions

        # The in-flight HITs drain while paused...
        while campaign.client.n_outstanding_hits > 0:
            await asyncio.sleep(0)
        for _ in range(50):  # ...and the runtime must then idle, not publish
            await asyncio.sleep(0)
        drained_completions = campaign.runtime.report.n_completions
        issues_while_paused = _issue_count(campaign) - issues_at_pause
        assert campaign.state is CampaignState.PAUSED

        service.resume(campaign.campaign_id)
        await service.wait(campaign.campaign_id)
        final_state = campaign.state
        status = campaign.status()
        await service.close()
        return (
            completions_at_pause,
            drained_completions,
            issues_while_paused,
            final_state,
            status,
        )

    (completions_at_pause, drained, issued_paused, final_state, status) = run_async(
        scenario()
    )
    assert drained > completions_at_pause, "in-flight completions must apply"
    assert issued_paused == 0, "a paused campaign must not issue new HITs"
    assert final_state is CampaignState.DONE
    assert status["n_labeled"] == status["n_pairs"]


def test_pause_before_first_issue_defers_everything(tmp_path):
    async def scenario():
        service = CampaignService(tmp_path)
        campaign = await service.create(make_spec("instant"))
        service.pause(campaign.campaign_id)  # before the task ever ran
        for _ in range(50):
            await asyncio.sleep(0)
        issued = _issue_count(campaign)
        service.resume(campaign.campaign_id)
        await service.wait(campaign.campaign_id)
        state = campaign.state
        await service.close()
        return issued, state

    issued, state = run_async(scenario())
    assert issued == 0
    assert state is CampaignState.DONE


def test_cancel_releases_the_parallel_worker_pool(tmp_path):
    async def scenario():
        service = CampaignService(tmp_path)
        register_stepped(service)
        campaign = await service.create(
            make_spec(
                "instant",
                backend="parallel",
                parallel_threshold=0,
                n_workers=2,
                kind="stepped-in-memory",
            )
        )
        assert campaign.engine.backend == "parallel"
        executor = campaign.engine._executor
        assert not executor.closed
        while campaign.client.n_outstanding_hits == 0:
            await asyncio.sleep(0)
        await service.cancel(campaign.campaign_id)
        state, closed = campaign.state, executor.closed
        await service.close()
        return state, closed

    state, closed = run_async(scenario())
    assert state is CampaignState.CANCELLED
    assert closed, "cancel must close the engine and its worker processes"


def test_cancelled_campaign_journal_survives_and_recovers(tmp_path):
    async def scenario():
        service = CampaignService(tmp_path)
        register_stepped(service)
        campaign = await service.create(
            make_spec("instant", kind="stepped-in-memory")
        )
        while campaign.client.n_outstanding_hits == 0:
            await asyncio.sleep(0)
        await service.cancel(campaign.campaign_id)
        cid = campaign.campaign_id

        revived = CampaignService(tmp_path)
        register_stepped(revived)
        recovered = await revived.recover()
        assert recovered == [cid]
        resumed = await revived.wait(cid)
        state = resumed.state
        n_labeled, n_pairs = resumed.engine.n_labeled, len(resumed.engine.pairs)
        await revived.close()
        return state, n_labeled, n_pairs

    state, n_labeled, n_pairs = run_async(scenario())
    assert state is CampaignState.DONE
    assert n_labeled == n_pairs


def test_create_with_unregistered_platform_kind_leaves_no_disk_state(tmp_path):
    spec = make_spec("instant")
    bad = CampaignSpec.from_dict(
        {**spec.to_dict(), "platform": {"kind": "no-such-platform"}}
    )

    async def scenario():
        service = CampaignService(tmp_path / "root")
        with pytest.raises(ValueError, match="no platform client factory"):
            await service.create(bad)
        return list((tmp_path / "root").glob("*")) if (
            tmp_path / "root"
        ).exists() else []

    assert run_async(scenario()) == []


def test_recover_skips_already_hosted_campaigns(tmp_path):
    async def scenario():
        service = CampaignService(tmp_path)
        campaign = await run_to_completion(service, make_spec("instant"))
        # recover() on the same service must not double-host the campaign
        assert await service.recover() == []
        assert len(service.list()) == 1
        await service.close()
        return campaign.campaign_id

    run_async(scenario())


def test_duplicate_campaign_id_rejected(tmp_path):
    async def scenario():
        service = CampaignService(tmp_path)
        await service.create(make_spec("instant"), campaign_id="dup")
        with pytest.raises(ValueError, match="already exists"):
            await service.create(make_spec("instant"), campaign_id="dup")
        await service.close()

    run_async(scenario())
