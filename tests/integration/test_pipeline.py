"""End-to-end integration tests: dataset -> matcher -> framework -> crowd ->
metrics, exercising the whole stack the way the examples and experiments do."""

from __future__ import annotations

import pytest

from repro.core.framework import TransitiveJoinFramework, label_baseline
from repro.core.ordering import ExpectedOrderSorter
from repro.crowd import (
    FixedLatency,
    SimulatedPlatform,
    make_worker_pool,
    run_non_transitive,
    run_transitive,
)
from repro.datasets import (
    generate_paper_dataset,
    generate_product_dataset,
    paper_spec,
    product_spec,
)
from repro.er import cluster_matches, evaluate_labels, true_matches_within
from repro.matcher import CandidateGenerator, TfIdfCosine, likelihood_map, word_tokens


@pytest.fixture(scope="module")
def paper_pipeline():
    """A small Cora-like dataset with generated candidates."""
    dataset = generate_paper_dataset(spec=paper_spec(0.15), seed=5)
    tokens = {rid: word_tokens(text) for rid, text in dataset.texts().items()}
    tfidf = TfIdfCosine(tokens.values())
    generator = CandidateGenerator(
        similarity=lambda a, b: tfidf.similarity(tokens[a], tokens[b]),
        tokens=tokens,
        max_block_size=150,
    )
    candidates = generator.generate(dataset.ids(), threshold=0.3)
    return dataset, candidates


@pytest.fixture(scope="module")
def product_pipeline():
    dataset = generate_product_dataset(spec=product_spec(0.15), seed=5)
    tokens = {rid: word_tokens(text) for rid, text in dataset.texts().items()}
    tfidf = TfIdfCosine(tokens.values())
    generator = CandidateGenerator(
        similarity=lambda a, b: tfidf.similarity(tokens[a], tokens[b]),
        tokens=tokens,
        source_of=dataset.source_of(),
        max_block_size=150,
    )
    candidates = generator.generate(dataset.ids(), threshold=0.3)
    return dataset, candidates


class TestMachineStep:
    def test_candidates_are_cross_source_for_bipartite(self, product_pipeline):
        dataset, candidates = product_pipeline
        source_of = dataset.source_of()
        for candidate in candidates:
            assert source_of[candidate.left] != source_of[candidate.right]

    def test_candidate_recall_is_high(self, paper_pipeline):
        """The machine step must keep most true matches above threshold."""
        dataset, candidates = paper_pipeline
        matches_kept = true_matches_within(
            [c.pair for c in candidates], dataset.entity_of
        )
        total = len(dataset.matching_pairs())
        assert len(matches_kept) / total > 0.8

    def test_blocking_prunes_pair_space(self, paper_pipeline):
        dataset, candidates = paper_pipeline
        assert candidates.n_scored < dataset.n_possible_pairs()


class TestFrameworkEndToEnd:
    def test_transitive_beats_baseline_on_paper(self, paper_pipeline):
        dataset, candidates = paper_pipeline
        truth = dataset.truth_oracle()
        framework = TransitiveJoinFramework(labeler="parallel")
        run = framework.label(list(candidates), truth)
        baseline = label_baseline(list(candidates), truth)
        assert run.result.n_crowdsourced < baseline.n_crowdsourced * 0.3

    def test_all_labels_correct_with_perfect_oracle(self, paper_pipeline):
        dataset, candidates = paper_pipeline
        truth = dataset.truth_oracle()
        run = TransitiveJoinFramework(labeler="parallel").label(
            list(candidates), truth
        )
        quality = evaluate_labels(run.result.labels(), truth)
        assert quality.f_measure == 1.0

    def test_clusters_recovered_from_matches(self, paper_pipeline):
        """Matching labels over candidates recover true clusters (restricted
        to candidate coverage)."""
        dataset, candidates = paper_pipeline
        truth = dataset.truth_oracle()
        run = TransitiveJoinFramework(labeler="sequential").label(
            list(candidates), truth
        )
        clusters = cluster_matches(run.result.matches())
        for cluster in clusters:
            entities = {dataset.entity_of[record_id] for record_id in cluster}
            assert len(entities) == 1  # no cluster mixes entities

    def test_product_savings_are_smaller(self, paper_pipeline, product_pipeline):
        paper_dataset, paper_candidates = paper_pipeline
        product_dataset, product_candidates = product_pipeline
        paper_run = TransitiveJoinFramework(labeler="parallel").label(
            list(paper_candidates), paper_dataset.truth_oracle()
        )
        product_run = TransitiveJoinFramework(labeler="parallel").label(
            list(product_candidates), product_dataset.truth_oracle()
        )
        paper_savings = paper_run.result.savings
        product_savings = product_run.result.savings
        assert paper_savings > product_savings


class TestPlatformEndToEnd:
    def test_campaign_with_noisy_workers_stays_reasonable(self, paper_pipeline):
        dataset, candidates = paper_pipeline
        ordered = ExpectedOrderSorter().sort(list(candidates))
        workers = make_worker_pool(
            10, ambiguity_aware=True, base_error=0.05, ambiguous_error=0.2, seed=3
        )
        platform = SimulatedPlatform(
            workers=workers,
            truth=dataset.truth_oracle(),
            likelihoods=likelihood_map(ordered),
            latency=FixedLatency(),
            batch_size=10,
            seed=3,
        )
        report = run_transitive(ordered, platform)
        quality = evaluate_labels(report.labels, dataset.truth_oracle())
        assert quality.f_measure > 0.7
        assert report.n_hits < len(ordered) / 10  # far fewer than baseline

    def test_transitive_campaign_cheaper_than_baseline(self, product_pipeline):
        dataset, candidates = product_pipeline
        ordered = ExpectedOrderSorter().sort(list(candidates))

        def fresh_platform(seed):
            return SimulatedPlatform(
                workers=make_worker_pool(10, seed=seed),
                truth=dataset.truth_oracle(),
                latency=FixedLatency(),
                batch_size=10,
                seed=seed,
            )

        transitive = run_transitive(ordered, fresh_platform(1))
        baseline = run_non_transitive(ordered, fresh_platform(2))
        assert transitive.cost <= baseline.cost
        assert transitive.labels == baseline.labels  # perfect workers agree
