"""Hypothesis strategies shared by the property-based tests.

The central generator builds a random *world*: a partition of objects into
entities (the ground truth) plus a random set of candidate pairs over those
objects.  Every labeling-algorithm invariant in the paper is quantified over
such worlds.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from hypothesis import strategies as st

from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import CandidatePair, Label, LabeledPair, Pair


@st.composite
def partitions(draw, min_objects: int = 2, max_objects: int = 12) -> Dict[str, int]:
    """A random assignment of objects o0..oN to entity ids."""
    n_objects = draw(st.integers(min_objects, max_objects))
    n_entities = draw(st.integers(1, n_objects))
    entity_of = {
        f"o{i}": draw(st.integers(0, n_entities - 1)) for i in range(n_objects)
    }
    return entity_of


@st.composite
def worlds(
    draw,
    min_objects: int = 2,
    max_objects: int = 12,
    max_pairs: int = 24,
) -> Tuple[List[CandidatePair], Dict[str, int]]:
    """(candidate pairs, ground-truth entity mapping).

    Likelihoods are drawn independently; they are *not* required to agree
    with the truth (the heuristic order must work even when the machine
    estimates are bad).
    """
    entity_of = draw(partitions(min_objects=min_objects, max_objects=max_objects))
    objects = sorted(entity_of)
    all_pairs = [
        Pair(objects[i], objects[j])
        for i in range(len(objects))
        for j in range(i + 1, len(objects))
    ]
    if not all_pairs:
        return [], entity_of
    chosen = draw(
        st.lists(st.sampled_from(all_pairs), unique=True, min_size=1, max_size=max_pairs)
    )
    candidates = [
        CandidatePair(pair, draw(st.floats(0.0, 1.0, allow_nan=False)))
        for pair in chosen
    ]
    return candidates, entity_of


@st.composite
def informed_worlds(
    draw,
    min_objects: int = 2,
    max_objects: int = 12,
    max_pairs: int = 24,
) -> Tuple[List[CandidatePair], Dict[str, int]]:
    """Like :func:`worlds`, but likelihoods correlate with the truth:
    matching pairs draw from [0.5, 1], non-matching from [0, 0.5]."""
    candidates, entity_of = draw(
        worlds(min_objects=min_objects, max_objects=max_objects, max_pairs=max_pairs)
    )
    oracle = GroundTruthOracle(entity_of)
    informed = []
    for cand in candidates:
        if oracle.label(cand.pair) is Label.MATCHING:
            likelihood = draw(st.floats(0.5, 1.0, allow_nan=False))
        else:
            likelihood = draw(st.floats(0.0, 0.5, allow_nan=False))
        informed.append(CandidatePair(cand.pair, likelihood))
    return informed, entity_of


@st.composite
def consistent_labelings(
    draw, min_objects: int = 2, max_objects: int = 10, max_pairs: int = 20
) -> List[LabeledPair]:
    """A consistent set of labeled pairs (induced by a random partition)."""
    candidates, entity_of = draw(
        worlds(min_objects=min_objects, max_objects=max_objects, max_pairs=max_pairs)
    )
    oracle = GroundTruthOracle(entity_of)
    return [LabeledPair(c.pair, oracle.label(c.pair)) for c in candidates]
