"""The expected labeling-order problem, hands on (paper Section 4.2).

Recomputes the paper's Example 4 exactly — the expected number of
crowdsourced pairs for every order of a 3-pair triangle — and then explores
the NP-hard general problem on random instances: how close does the paper's
likelihood-descending heuristic get to the brute-force optimum?

Run:  python examples/expected_cost_analysis.py
"""

import itertools

from repro import candidate, expected_cost
from repro.core.expected_cost import (
    brute_force_expected_optimal,
    crowdsourcing_probabilities,
    enumerate_consistent_assignments,
)
from repro.experiments.ablations import run_heuristic_gap_study


def example4() -> None:
    print("— Paper Example 4 —")
    p1 = candidate("o1", "o2", 0.9)
    p2 = candidate("o2", "o3", 0.5)
    p3 = candidate("o1", "o3", 0.1)
    pairs = {"p1": p1, "p2": p2, "p3": p3}

    assignments = enumerate_consistent_assignments([p1, p2, p3])
    print(f"consistent label assignments: {len(assignments)} of 8 "
          "(transitivity forbids two-matching-one-not triangles)")

    print("\norder            E[C]   P(crowdsourced) per position")
    for names in itertools.permutations(("p1", "p2", "p3")):
        order = [pairs[n] for n in names]
        cost = expected_cost(order)
        probabilities = crowdsourcing_probabilities(order)
        rendered = ", ".join(f"{p:.2f}" for p in probabilities)
        print(f"<{', '.join(names)}>   {cost:.2f}   [{rendered}]")

    best_order, best = brute_force_expected_optimal([p1, p2, p3])
    print(f"\nbrute-force optimum: E[C] = {best:.2f} "
          "(the paper's 2.09; achieved by the likelihood-descending order)")


def heuristic_gap() -> None:
    print("\n— Heuristic vs brute force on random instances —")
    result = run_heuristic_gap_study(n_instances=40, seed=1)
    print(result.render())


def main() -> int:
    example4()
    heuristic_gap()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
