"""A transitive-join campaign against the MTurk backend — replayed offline.

This is the repo's live-platform shape: ``MTurkBackend`` speaks the real
MTurk Requester wire protocol (SigV4-signed JSON RPC, QuestionForm XML,
paginated assignment listing, approve/reject review), the
``PollingPlatformClient`` polls it, and the ``CrowdRuntime`` labels the
join with transitive deduction, expiry re-issue, budget enforcement, and
an ``ApproveAll`` review policy.

By default no network and no credentials are involved: the campaign
**replays a committed cassette** (``examples/fixtures/mturk_campaign.json``)
through a ``RecordReplayBackend`` — every request the campaign makes is
checked against the recording and answered from it, so the run is
deterministic, offline, and fails loudly (non-zero exit) if the campaign
logic ever drifts from the recorded traffic.

Modes (see docs/crowd.md for the full operator runbook):

    python examples/mturk_campaign.py             # replay the cassette
    python examples/mturk_campaign.py --record    # re-record it (offline,
                                                  # against the in-process
                                                  # fake MTurk service)
    python examples/mturk_campaign.py --live      # real MTurk sandbox
                                                  # (needs AWS_* env vars)

The ``--live`` path is byte-for-byte the same campaign code; only the
transport and clock change.
"""

import argparse
import asyncio
import sys
from pathlib import Path

from repro import CampaignSpec, PlatformConfig, expected_order
from repro.core.pairs import Pair
from repro.crowd import (
    ApproveAll,
    BudgetPolicy,
    Cassette,
    Credentials,
    FakeMTurkService,
    ManualClock,
    MTurkBackend,
    PollingPlatformClient,
    RecordReplayBackend,
    ThrottlePolicy,
    TimeoutPolicy,
)
from repro.datasets import generate_paper_dataset, paper_spec
from repro.engine import CrowdRuntime
from repro.matcher import CandidateGenerator, TfIdfCosine, word_tokens

CASSETTE = Path(__file__).resolve().parent / "fixtures" / "mturk_campaign.json"

SCALE = 0.03
THRESHOLD = 0.35
SEED = 11
START_EPOCH = 1_700_000_000.0  # the recorded campaign's t=0, epoch seconds

# Dummy keys for offline recording: the fake service *verifies* SigV4
# signatures against them, so the signing path is exercised end to end.
OFFLINE_CREDENTIALS = Credentials("AKIDEXAMPLE", "wJalrXUtnFEMI-K7MDENG-bPxRfiCY")

BATCH_SIZE = 5
N_ASSIGNMENTS = 3
POLL_INTERVAL_S = 30.0
HIT_TIMEOUT_S = 900.0


def build_workload():
    """A small Cora-like workload in the paper's heuristic order."""
    dataset = generate_paper_dataset(spec=paper_spec(SCALE), seed=SEED)
    tokens = {rid: word_tokens(text) for rid, text in dataset.texts().items()}
    tfidf = TfIdfCosine(tokens.values())
    generator = CandidateGenerator(
        similarity=lambda a, b: tfidf.similarity(tokens[a], tokens[b]),
        tokens=tokens,
        max_block_size=200,
    )
    candidates = expected_order(
        list(generator.generate(dataset.ids(), threshold=THRESHOLD))
    )
    return candidates, dataset.truth_oracle()


def make_offline_backend(truth, clock, *, record: bool):
    """The wire stack for offline runs: fake service -> MTurkBackend ->
    cassette recorder (record) or cassette replayer alone (replay)."""
    if not record:
        return RecordReplayBackend("replay", cassette=Cassette.load(CASSETTE))
    # Record ids are strings, so the texts workers see *are* the ids.
    service = FakeMTurkService(
        lambda left, right: truth.label(Pair(left, right)),
        credentials=OFFLINE_CREDENTIALS,
        clock=clock.now,
        latency=lambda rng: rng.uniform(60.0, 600.0),
        drop_hit_indexes={2},  # one abandoned HIT: expiry + re-issue
        seed=SEED,
    )
    backend = MTurkBackend(
        OFFLINE_CREDENTIALS,
        transport=service.transport,
        clock=clock.now,
        # Pacing must not perturb the recorded timeline: unlimited bucket,
        # no-op sleep.  (Live runs use the defaults instead.)
        throttle=ThrottlePolicy(rate=1e6, burst=1000, sleep=lambda s: None),
        page_size=4,  # small pages force ListAssignments pagination
    )
    return RecordReplayBackend(
        "record",
        inner=backend,
        meta={
            "example": "mturk_campaign",
            "scale": SCALE,
            "threshold": THRESHOLD,
            "seed": SEED,
            "start_epoch": START_EPOCH,
        },
    )


def make_live_backend():  # pragma: no cover - needs real credentials
    """The same stack pointed at the real MTurk sandbox (runbook path)."""
    return MTurkBackend(Credentials.from_env())


def build_spec(candidates) -> CampaignSpec:
    """The whole campaign as one CampaignSpec — the same document the
    campaign service's HTTP create endpoint and journal header carry."""
    return CampaignSpec(
        order=candidates,
        mode="instant",  # re-decide after every completion
        budget=BudgetPolicy(max_assignments=5000),
        timeout=TimeoutPolicy(hit_timeout=HIT_TIMEOUT_S, max_reissues=3),
        review=ApproveAll(),
        platform=PlatformConfig(
            kind="mturk",
            batch_size=BATCH_SIZE,
            n_assignments=N_ASSIGNMENTS,
            options={"poll_interval": POLL_INTERVAL_S},
        ),
    )


async def run_campaign(spec: CampaignSpec, backend, clock):
    client = PollingPlatformClient(
        backend,
        batch_size=spec.platform.batch_size,
        n_assignments=spec.platform.n_assignments,
        poll_interval=spec.platform.options["poll_interval"],
        clock=clock.now,
        sleep=clock.sleep,
    )
    engine = spec.build_engine()
    runtime = CrowdRuntime(engine, client, spec=spec)
    report = await runtime.run()
    return engine, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--record",
        action="store_true",
        help="re-record the committed cassette against the in-process fake",
    )
    group.add_argument(
        "--live",
        action="store_true",
        help="run against the real MTurk sandbox (AWS_* env vars required)",
    )
    args = parser.parse_args(argv)

    candidates, truth = build_workload()
    print(f"{len(candidates):,} candidate pairs to label")

    # Round-trip the campaign through its JSON wire form: what runs below
    # is exactly what an operator could POST to the campaign service.
    spec = CampaignSpec.from_json(build_spec(candidates).to_json())
    assert spec == build_spec(candidates), "spec JSON round-trip must be exact"

    if args.live:  # pragma: no cover - needs real credentials
        import time

        class _WallClock:
            now = staticmethod(time.time)
            sleep = staticmethod(asyncio.sleep)

        backend, clock = make_live_backend(), _WallClock()
        print("mode: LIVE (MTurk sandbox)\n")
    else:
        clock = ManualClock(start=START_EPOCH)
        backend = make_offline_backend(truth, clock, record=args.record)
        print(f"mode: {'RECORD' if args.record else 'REPLAY'} ({CASSETTE.name})\n")

    engine, report = asyncio.run(run_campaign(spec, backend, clock))

    result = engine.result
    correct = sum(
        1 for pair in engine.pairs if result.label_of(pair) is truth.label(pair)
    )
    print("transitive-join campaign over MTurkBackend")
    print(f"  pairs labeled        {result.n_pairs:6,}")
    print(f"  crowdsourced         {result.n_crowdsourced:6,}")
    print(f"  deduced for free     {result.n_deduced:6,}")
    print(f"  HITs published       {len(report.hit_batches):6,}")
    print(f"  completions applied  {report.n_completions:6,}")
    print(f"  expired / re-issued  {report.n_expired_hits:6,} / {report.n_reissued_hits:,}")
    print(f"  assignments spent    {report.assignments_committed:6,}")
    print(f"  assignments approved {report.n_assignments_approved:6,}")
    print(f"  campaign seconds     {report.completion_hours - START_EPOCH:8.0f}")
    print(f"  labels correct       {correct:6,} / {result.n_pairs:,}")

    failures = []
    if result.n_pairs != len(candidates):
        failures.append(
            f"labeled {result.n_pairs} of {len(candidates)} candidate pairs"
        )
    if correct != result.n_pairs:
        failures.append(f"only {correct}/{result.n_pairs} labels correct")
    if report.n_assignments_approved == 0:
        failures.append("no assignments were approved for payment")

    if args.record:
        backend.save(CASSETTE)
        print(f"\nrecorded {len(backend.cassette)} interactions -> {CASSETTE}")
    elif not args.live:
        try:
            backend.assert_exhausted()
        except Exception as exc:  # divergence: cassette under-consumed
            failures.append(str(exc))

    if failures:
        print("\nCAMPAIGN FAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
