"""A crowdsourced-join campaign on the distributed shard backend.

``backend="distributed"`` runs the engine's per-component shards on
worker processes reached over TCP sockets — the same shared-nothing
command protocol as ``backend="parallel"``, but with a transport that can
leave the machine (``workers=["host:port", ...]`` connects to remote
``ShardWorkerHost`` processes started with
``python -m repro.engine.distributed --worker host:port``).  Here the
``spawn_local_workers=N`` convenience forks the worker hosts locally, so
the example runs offline in seconds while still exercising the real wire
protocol end to end.

Two acts:

1. a campaign over the distributed backend, checked label-for-label
   against the single-process monolithic run (the backends are pinned
   observationally identical — see docs/backends.md);
2. the worker-loss contract: the same campaign with one worker host
   SIGKILLed mid-flight.  The coordinator detects the dead worker,
   re-ships its components to the survivor from the authoritative
   snapshot, replays the committed events, and finishes with a
   ``state_fingerprint()`` byte-identical to the fault-free run.

Run:  python examples/distributed_campaign.py
(exits non-zero if parity or the recovery contract fails)
"""

import json
import os
import signal
import sys

from repro import expected_order
from repro.engine import LabelingEngine, RoundParallelDispatch
from repro.matcher import CandidateGenerator, TfIdfCosine, word_tokens
from repro.datasets import generate_paper_dataset, paper_spec

THRESHOLD = 0.3
SCALE = 0.08
SEED = 11
N_WORKERS = 2


def build_candidates():
    """A small Cora-like workload in the paper's heuristic order."""
    dataset = generate_paper_dataset(spec=paper_spec(SCALE), seed=SEED)
    tokens = {rid: word_tokens(text) for rid, text in dataset.texts().items()}
    tfidf = TfIdfCosine(tokens.values())
    generator = CandidateGenerator(
        similarity=lambda a, b: tfidf.similarity(tokens[a], tokens[b]),
        tokens=tokens,
        max_block_size=200,
    )
    candidates = expected_order(
        list(generator.generate(dataset.ids(), threshold=THRESHOLD))
    )
    return [c.pair for c in candidates], dataset.truth_oracle()


def run_rounds(order, truth, *, kill_worker=False):
    """Drive one round-per-frontier campaign on the distributed backend.

    With ``kill_worker=True``, one worker host is SIGKILLed halfway through
    the first round's answers — mid-campaign, with components and committed
    events on board.  Returns ``(fingerprint_json, coordinator_report)`` —
    the fingerprint is the engine's full observable state, serialized
    canonically so two runs can be compared byte for byte.
    """
    engine = LabelingEngine(order, backend="distributed", spawn_local_workers=N_WORKERS)
    try:
        coordinator = engine.executor
        round_index = 0
        killed = not kill_worker
        while not engine.is_done:
            frontier = engine.frontier()
            engine.publish(frontier)
            for i, pair in enumerate(frontier):
                if not killed and i == len(frontier) // 2:
                    victim = coordinator.worker_pids()[0]
                    os.kill(victim, signal.SIGKILL)  # a real, unceremonious death
                    killed = True
                engine.record_answer(pair, truth.label(pair), round_index)
            engine.sweep(round_index)
            round_index += 1
        report = {
            "n_workers": coordinator.n_workers,
            "n_components": coordinator.n_components,
            "live_workers": len(coordinator.live_worker_ids()),
            "reassignments": list(coordinator.reassignments),
            "rounds": round_index,
        }
        return json.dumps(engine.state_fingerprint(), sort_keys=True), report
    finally:
        engine.close()


def main() -> int:
    order, truth = build_candidates()
    print(f"{len(order):,} candidate pairs to label\n")

    # Act 1 — the distributed backend is a drop-in: same strategy surface,
    # same labels as the single-process monolithic engine.
    distributed = RoundParallelDispatch(
        backend="distributed", spawn_local_workers=N_WORKERS
    ).run(order, truth)
    monolithic = RoundParallelDispatch(backend="monolithic").run(order, truth)
    parity = distributed.labels() == monolithic.labels()
    print("distributed campaign over TCP shard workers")
    print(f"  pairs labeled        {distributed.n_pairs:6,}")
    print(f"  crowdsourced         {distributed.n_crowdsourced:6,}")
    print(f"  deduced for free     {distributed.n_deduced:6,}")
    print(f"  rounds               {distributed.n_rounds:6,}")
    print(f"  parity vs monolithic {'identical' if parity else 'DIVERGED'}")

    # Act 2 — kill a worker host mid-campaign; the coordinator re-ships its
    # components to the survivor and the campaign finishes unchanged.
    clean_fp, clean = run_rounds(order, truth)
    chaos_fp, chaos = run_rounds(order, truth, kill_worker=True)
    recovered = chaos_fp == clean_fp
    print("\nworker-loss recovery (SIGKILL mid-round)")
    print(f"  components / workers {clean['n_components']:6,} / {clean['n_workers']}")
    print(f"  workers left alive   {chaos['live_workers']:6,}")
    for event in chaos["reassignments"]:
        print(
            f"  re-assigned          {event['moved_components']:,} components "
            f"({event['moved_pairs']:,} pairs) after: {event['reason']}"
        )
    print(f"  state fingerprint    {'byte-identical' if recovered else 'DIVERGED'}")

    failures = []
    if not parity:
        failures.append("distributed labels diverged from monolithic")
    if not recovered:
        failures.append("post-SIGKILL fingerprint diverged from fault-free run")
    if not chaos["reassignments"]:
        failures.append("worker death produced no re-assignment record")
    if failures:
        print("\nCAMPAIGN FAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
