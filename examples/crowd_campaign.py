"""Running a full crowd campaign on the simulated platform.

The end-to-end Section 6.4 workflow: batch pairs into 20-pair HITs,
replicate each HIT to three noisy workers, majority-vote the answers, feed
them through the transitive framework with instant decision, and account for
money, wall-clock time, and result quality — then audit a sample of the
deduced labels (the error-tolerance extension).

Run:  python examples/crowd_campaign.py
"""

from repro import expected_order
from repro.crowd import (
    LognormalLatency,
    QualificationTest,
    SimulatedPlatform,
    make_worker_pool,
    run_non_transitive,
    run_transitive,
)
from repro.datasets import generate_paper_dataset, paper_spec
from repro.er import evaluate_labels
from repro.ext import FreshNoisyOracle, audit_deductions
from repro.matcher import CandidateGenerator, TfIdfCosine, likelihood_map, word_tokens

THRESHOLD = 0.3
SCALE = 0.3
SEED = 11


def build_platform(dataset, likelihoods, seed):
    workers = make_worker_pool(
        20,
        ambiguity_aware=True,
        base_error=0.05,
        ambiguous_error=0.3,
        systematic_fraction=0.5,
        qualification=QualificationTest(),
        seed=seed,
    )
    return SimulatedPlatform(
        workers=workers,
        truth=dataset.truth_oracle(),
        likelihoods=likelihoods,
        latency=LognormalLatency(),
        batch_size=20,
        n_assignments=3,
        seed=seed,
    )


def main() -> None:
    dataset = generate_paper_dataset(spec=paper_spec(SCALE), seed=SEED)
    tokens = {rid: word_tokens(text) for rid, text in dataset.texts().items()}
    tfidf = TfIdfCosine(tokens.values())
    generator = CandidateGenerator(
        similarity=lambda a, b: tfidf.similarity(tokens[a], tokens[b]),
        tokens=tokens,
        max_block_size=200,
    )
    candidates = expected_order(
        list(generator.generate(dataset.ids(), threshold=THRESHOLD))
    )
    likelihoods = likelihood_map(candidates)
    truth = dataset.truth_oracle()
    print(f"{len(candidates):,} candidate pairs to label\n")

    print("strategy        HITs   hours   cost($)  P(%)   R(%)   F(%)")
    for name, runner in (
        ("non-transitive", run_non_transitive),
        ("transitive(ID)", run_transitive),
    ):
        platform = build_platform(dataset, likelihoods, seed=SEED)
        report = runner(candidates, platform)
        quality = evaluate_labels(report.labels, truth)
        print(
            f"{name:15} {report.n_hits:5,} {report.completion_hours:7.1f} "
            f"{report.cost:8.2f} {100 * quality.precision:6.1f} "
            f"{100 * quality.recall:6.1f} {100 * quality.f_measure:6.1f}"
        )
        if name.startswith("transitive"):
            transitive_report = report

    # Error-tolerance extension: audit 10% of the deduced labels with three
    # fresh votes each and repair disagreements.
    from repro.core.result import LabelingResult
    from repro.core.pairs import Provenance

    result = LabelingResult()
    for pair, label in transitive_report.labels.items():
        result.record(pair, label, transitive_report.provenance[pair], 0)
    audit_oracle = FreshNoisyOracle(truth, error_rate=0.1, seed=SEED)
    report = audit_deductions(result, audit_oracle, fraction=0.1, votes=3, seed=SEED)
    repaired = evaluate_labels(report.repaired_labels, truth)
    print(
        f"\naudit: re-asked {len(report.audited)} deduced pairs "
        f"({report.extra_queries} extra questions), "
        f"{len(report.disagreements)} disagreements "
        f"({100 * report.disagreement_rate:.1f}%)"
    )
    print(f"F-measure after repair: {100 * repaired.f_measure:.1f}%")


if __name__ == "__main__":
    raise SystemExit(main())
