"""The multi-tenant campaign service, driven end-to-end over HTTP — offline.

This example runs the whole service stack a deployment would run:

1. start a :class:`~repro.service.CampaignService` with its stdlib HTTP
   front end (``CampaignHTTPServer``);
2. POST a :class:`~repro.spec.CampaignSpec` JSON document to
   ``/campaigns`` — the same document ``examples/mturk_campaign.py``
   round-trips, here pointed at the built-in deterministic ``in-memory``
   platform with scripted crowd answers;
3. pause and resume the campaign over HTTP while it runs, then poll its
   status until the crowd finishes;
4. simulate a process crash: throw the service away (journals survive on
   disk), start a **fresh** service over the same root, and ``recover()``
   — the journal replays through the real runtime and must land on the
   exact same engine state the first process reached.

No network, no credentials, no third-party dependency: the "platform" is
in-process, the clock is manual, and the whole run is deterministic.
"""

import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro import CampaignSpec, PlatformConfig
from repro.core.pairs import Label, Pair
from repro.crowd.clients import (
    InMemoryCrowdBackend,
    ManualClock,
    PollingPlatformClient,
)
from repro.service import CampaignHTTPServer, CampaignService

# Twelve entity clusters; the campaign must discover them from pair
# answers.  Large enough that the campaign is still mid-flight when the
# pause request lands (an HTTP round-trip costs a handful of event-loop
# steps; the campaign needs hundreds).
CLUSTERS = [list(range(start, start + 5)) for start in range(0, 60, 5)]


def build_spec() -> CampaignSpec:
    """A small transitive-join campaign with fully scripted crowd answers."""
    members = {obj: ci for ci, cluster in enumerate(CLUSTERS) for obj in cluster}
    objects = sorted(members)
    pairs = [
        (a, b) for i, a in enumerate(objects) for b in objects[i + 1 :]
        if abs(a - b) <= 6  # a blocking window, like a real matcher would cut
    ]
    answers = [
        [a, b, "matching" if members[a] == members[b] else "non-matching"]
        for a, b in pairs
    ]
    return CampaignSpec(
        order=pairs,
        mode="instant",
        platform=PlatformConfig(
            kind="paced-in-memory",
            batch_size=4,
            n_assignments=1,
            options={"answers": answers},
        ),
    )


def paced_in_memory_factory(spec: CampaignSpec):
    """The built-in ``in-memory`` platform, paced by the real clock.

    Simulated time still comes from a :class:`ManualClock` (so the run is
    deterministic), but every poll cycle also sleeps a few real
    milliseconds — giving the operator a window to pause a *live* campaign
    over HTTP, which an unpaced in-memory campaign finishes too fast to
    allow.  Custom platforms register exactly like this
    (``service.register_client_factory``).
    """
    answers = {
        Pair(a, b): Label(label)
        for a, b, label in spec.platform.options.get("answers", [])
    }
    clock = ManualClock()
    backend = InMemoryCrowdBackend(
        answer_fn=lambda pair: answers[pair],
        clock=clock.now,
        latency=lambda rng: 1.0,
        seed=0,
    )

    async def paced_sleep(seconds: float) -> None:
        await clock.sleep(seconds)  # advance simulated time
        await asyncio.sleep(0.003)  # pace the real event loop

    return PollingPlatformClient(
        backend,
        batch_size=spec.platform.batch_size,
        n_assignments=spec.platform.n_assignments,
        poll_interval=1.0,
        clock=clock.now,
        sleep=paced_sleep,
    )


async def http(host: str, port: int, method: str, path: str, body: str = ""):
    """One raw HTTP/1.1 request over asyncio streams; returns (status, json)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = body.encode("utf-8")
    writer.write(
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n".encode("ascii") + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, doc = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(doc)


async def main_async(root: Path) -> int:
    failures = []
    spec_json = build_spec().to_json()

    # -- first process: create over HTTP, pause/resume, run to completion --
    service = CampaignService(root)
    service.register_client_factory("paced-in-memory", paced_in_memory_factory)
    server = CampaignHTTPServer(service)
    host, port = await server.start()
    print(f"campaign service over HTTP at http://{host}:{port}")

    status, created = await http(host, port, "POST", "/campaigns", spec_json)
    cid = created.get("campaign_id")
    print(f"POST /campaigns -> {status} (campaign {cid}, {created['n_pairs']} pairs)")
    if status != 201:
        failures.append(f"create returned {status}")

    _, paused = await http(host, port, "POST", f"/campaigns/{cid}/pause")
    _, resumed = await http(host, port, "POST", f"/campaigns/{cid}/resume")
    print(f"pause -> {paused['state']}, resume -> {resumed['state']}")
    if (paused["state"], resumed["state"]) != ("paused", "running"):
        failures.append("pause/resume did not flip the campaign state")

    while True:
        status, snap = await http(host, port, "GET", f"/campaigns/{cid}")
        if snap["state"] != "running":
            break
        await asyncio.sleep(0.01)
    print(
        f"campaign {snap['state']}: {snap['n_crowdsourced']} crowdsourced, "
        f"{snap['n_deduced']} deduced, {snap['assignments_committed']} "
        f"assignments, journal seq {snap['journal_seq']}"
    )
    if snap["state"] != "done":
        failures.append(f"campaign ended {snap['state']!r}, not done")
    if snap["n_deduced"] == 0:
        failures.append("transitivity deduced nothing — campaign logic broke")

    fingerprint = service.get(cid).engine.state_fingerprint()
    await server.stop()
    await service.close()

    # -- "crashed" process: fresh service, same root, recover by replay --
    revived = CampaignService(root)
    revived.register_client_factory("paced-in-memory", paced_in_memory_factory)
    recovered_ids = await revived.recover()
    print(f"fresh service recovered campaigns: {recovered_ids}")
    if recovered_ids != [cid]:
        failures.append(f"recover() found {recovered_ids}, expected [{cid}]")
    campaign = await revived.wait(cid)
    replay_fp = campaign.engine.state_fingerprint()
    identical = replay_fp == fingerprint
    print(f"replayed engine state identical to original: {identical}")
    if not identical:
        failures.append("journal replay diverged from the original run")
    await revived.close()

    if failures:
        print("\nSERVICE EXAMPLE FAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    return 0


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        return asyncio.run(main_async(Path(tmp)))


if __name__ == "__main__":
    raise SystemExit(main())
