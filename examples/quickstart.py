"""Quickstart: transitivity-aware crowdsourced joins in ~40 lines.

Recreates the paper's motivating example — matching product names — with the
public API.  A handful of likely-matching pairs comes out of some matcher;
we hand them to the framework with a (simulated) crowd oracle and watch it
resolve all of them while asking about only a subset.

Run:  python examples/quickstart.py
"""

from repro import (
    CandidatePair,
    GroundTruthOracle,
    Pair,
    Provenance,
    TransitiveJoinFramework,
    candidate,
)

# The candidate pairs produced by a machine-based matcher, with likelihoods.
# Real pipelines get these from repro.matcher; here they are hand-written.
candidates = [
    candidate("iPad 2nd Gen", "iPad Two", 0.95),
    candidate("iPad Two", "iPad 2", 0.90),
    candidate("iPad 2nd Gen", "iPad 2", 0.85),  # deducible from the first two
    candidate("iPad 2", "iPad 3", 0.55),
    candidate("iPad Two", "iPad 3", 0.50),      # deducible: negative transitivity
    candidate("Galaxy Tab", "Galaxy Tab 10.1", 0.60),
]

# In production the oracle is your crowd platform; here, ground truth.
truth = GroundTruthOracle(
    {
        "iPad 2nd Gen": "ipad2",
        "iPad Two": "ipad2",
        "iPad 2": "ipad2",
        "iPad 3": "ipad3",
        "Galaxy Tab": "tab",
        "Galaxy Tab 10.1": "tab101",
    }
)


def main() -> None:
    framework = TransitiveJoinFramework(labeler="parallel")
    run = framework.label(candidates, truth)

    print(f"candidate pairs : {run.result.n_pairs}")
    print(f"asked the crowd : {run.result.n_crowdsourced}")
    print(f"deduced for free: {run.result.n_deduced}")
    print(f"crowd rounds    : {run.result.n_rounds}\n")

    for outcome in run.result:
        how = "crowd " if outcome.provenance is Provenance.CROWDSOURCED else "deduce"
        pair = outcome.pair
        print(f"  [{how}] {pair.left!r:16} ~ {pair.right!r:16} -> {outcome.label.value}")

    matches = sorted(
        (pair.left, pair.right) for pair in run.result.matches()
    )
    print(f"\nfinal matches: {matches}")


if __name__ == "__main__":
    raise SystemExit(main())
