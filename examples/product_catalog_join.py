"""Joining two product catalogues: the paper's "Product" (Abt-Buy) scenario.

A bipartite join between two stores, where duplicate clusters are tiny
(usually one listing per store), so plain transitive savings are modest —
and the one-to-one extension (each product appears at most once per store)
recovers substantially more deductions.

Run:  python examples/product_catalog_join.py
"""

from repro import expected_order, label_sequential
from repro.datasets import ClusterSizeSpec, generate_product_dataset
from repro.er import evaluate_labels
from repro.ext import label_sequential_one_to_one
from repro.matcher import CandidateGenerator, TfIdfCosine, word_tokens

THRESHOLD = 0.25
SEED = 7
# A strictly one-to-one world (clusters of at most one record per store), so
# the one-to-one rule is sound.
SPEC = ClusterSizeSpec.from_mapping({2: 260, 1: 120})


def main() -> None:
    dataset = generate_product_dataset(spec=SPEC, seed=SEED)
    sources = {s: sum(1 for r in dataset if r.source == s) for s in dataset.sources()}
    print(f"dataset: {sources} records, {len(dataset.matching_pairs())} true matches\n")

    tokens = {rid: word_tokens(text) for rid, text in dataset.texts().items()}
    tfidf = TfIdfCosine(tokens.values())
    generator = CandidateGenerator(
        similarity=lambda a, b: tfidf.similarity(tokens[a], tokens[b]),
        tokens=tokens,
        source_of=dataset.source_of(),
        max_block_size=200,
    )
    candidates = generator.generate(dataset.ids(), threshold=THRESHOLD)
    print(f"machine step: {len(candidates):,} candidate pairs above {THRESHOLD}")

    truth = dataset.truth_oracle()
    order = expected_order(list(candidates))

    plain = label_sequential(order, truth)
    one_to_one = label_sequential_one_to_one(order, truth, dataset.source_of())

    print(f"\nplain transitivity : {plain.n_crowdsourced:,} crowdsourced "
          f"({100 * plain.savings:.1f}% deduced)")
    print(f"+ one-to-one rule  : {one_to_one.n_crowdsourced:,} crowdsourced "
          f"({100 * one_to_one.savings:.1f}% deduced)")

    extra = plain.n_crowdsourced - one_to_one.n_crowdsourced
    print(f"extra savings      : {extra:,} pairs "
          f"({100 * extra / plain.n_crowdsourced:.1f}% of the remaining cost)")

    quality = evaluate_labels(one_to_one.labels(), truth)
    print(f"F-measure          : {100 * quality.f_measure:.1f}% "
          f"(the rule is sound here: the data is strictly 1-to-1)")


if __name__ == "__main__":
    raise SystemExit(main())
