"""An async crowd campaign against a (fake) live platform.

Everything before this example ran against the discrete-event simulator.
Here the campaign runs the way it would against a real platform: the
``CrowdRuntime`` awaits HIT completions from a ``PollingPlatformClient``
that periodically fetches a REST-shaped backend — answers arrive *out of
order*, one worker abandons a HIT (it expires and is re-issued), and budget
and latency limits are enforced by the runtime, not the platform.

The backend is the in-memory fake shipped for tests, driven by a manual
clock, so the example is deterministic and runs offline in milliseconds; to
point the same campaign at a real service, use the MTurk backend shipped in
``repro.crowd.platforms`` (see ``examples/mturk_campaign.py`` and
``docs/crowd.md``) or implement the three-method ``RestCrowdBackend``
surface (create/fetch/expire) over the platform's HTTP API.

Run:  python examples/async_campaign.py
(exits non-zero if the campaign fails to label everything correctly)
"""

import asyncio
import sys

from repro import expected_order
from repro.core.oracle import GroundTruthOracle
from repro.crowd import (
    BudgetPolicy,
    InMemoryCrowdBackend,
    ManualClock,
    PollingPlatformClient,
    TimeoutPolicy,
)
from repro.engine import AsyncDispatch, CrowdRuntime, LabelingEngine, RuntimeMode
from repro.matcher import CandidateGenerator, TfIdfCosine, word_tokens
from repro.datasets import generate_paper_dataset, paper_spec

THRESHOLD = 0.3
SCALE = 0.08
SEED = 11


def build_candidates():
    """A small Cora-like workload in the paper's heuristic order."""
    dataset = generate_paper_dataset(spec=paper_spec(SCALE), seed=SEED)
    tokens = {rid: word_tokens(text) for rid, text in dataset.texts().items()}
    tfidf = TfIdfCosine(tokens.values())
    generator = CandidateGenerator(
        similarity=lambda a, b: tfidf.similarity(tokens[a], tokens[b]),
        tokens=tokens,
        max_block_size=200,
    )
    candidates = expected_order(
        list(generator.generate(dataset.ids(), threshold=THRESHOLD))
    )
    return candidates, dataset.truth_oracle()


async def run_campaign(candidates, truth):
    clock = ManualClock()
    # The fake "live" platform: workers take 0.5-6 virtual hours per HIT
    # (drawn per HIT, so completions come back out of publication order)
    # and abandon HIT #2 outright — the runtime's timeout policy will
    # expire and re-issue it.
    backend = InMemoryCrowdBackend(
        oracle=truth,
        clock=clock.now,
        latency=lambda rng: rng.uniform(0.5, 6.0),
        drop_hit_ids={2},
        seed=SEED,
    )
    client = PollingPlatformClient(
        backend,
        batch_size=10,
        n_assignments=1,
        poll_interval=0.25,
        clock=clock.now,
        sleep=clock.sleep,  # polls advance the virtual clock
    )
    engine = LabelingEngine([c.pair for c in candidates])
    runtime = CrowdRuntime(
        engine,
        client,
        mode=RuntimeMode.HIT_INSTANT,  # re-decide after every completion
        budget=BudgetPolicy(max_assignments=5000),
        timeout=TimeoutPolicy(hit_timeout=12.0, max_reissues=3),
    )
    report = await runtime.run()
    return engine, report


def main() -> int:
    candidates, truth = build_candidates()
    print(f"{len(candidates):,} candidate pairs to label\n")

    engine, report = asyncio.run(run_campaign(candidates, truth))

    result = engine.result
    correct = sum(
        1 for pair in engine.pairs if result.label_of(pair) is truth.label(pair)
    )
    print("async campaign over PollingPlatformClient + in-memory backend")
    print(f"  pairs labeled        {result.n_pairs:6,}")
    print(f"  crowdsourced         {result.n_crowdsourced:6,}")
    print(f"  deduced for free     {result.n_deduced:6,}")
    print(f"  HITs published       {len(report.hit_batches):6,}")
    print(f"  completions applied  {report.n_completions:6,}")
    print(f"  expired / re-issued  {report.n_expired_hits:6,} / {report.n_reissued_hits:,}")
    print(f"  assignments spent    {report.assignments_committed:6,}")
    print(f"  virtual hours        {report.completion_hours:8.1f}")
    print(f"  labels correct       {correct:6,} / {result.n_pairs:,}")

    # The same semantics are available as an awaitable strategy: the
    # default client is the deterministic simulated platform, so this is
    # the drop-in async equivalent of RoundParallelDispatch.
    rounds_result = AsyncDispatch(RuntimeMode.ROUNDS).run(
        [c.pair for c in candidates], truth
    )
    print(
        f"\nAsyncDispatch(ROUNDS): {rounds_result.n_crowdsourced:,} crowdsourced "
        f"in {rounds_result.n_rounds} rounds "
        f"({rounds_result.n_deduced:,} deduced)"
    )

    failures = []
    if result.n_pairs != len(candidates):
        failures.append(f"labeled {result.n_pairs} of {len(candidates)} pairs")
    if correct != result.n_pairs:
        failures.append(f"only {correct}/{result.n_pairs} labels correct")
    if rounds_result.n_pairs != len(candidates):
        failures.append("AsyncDispatch(ROUNDS) did not label every pair")
    if failures:
        print("\nCAMPAIGN FAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
