"""Deduplicating a bibliography: the paper's "Paper" (Cora-like) scenario.

Large duplicate clusters are where transitivity shines: a cluster of k
citation variants has k*(k-1)/2 candidate pairs but only k-1 need the crowd.
This example runs the full machine+human pipeline on a synthetic Cora-like
corpus and reports the savings and the recovered publication clusters.

Run:  python examples/bibliography_dedup.py
"""

from repro import TransitiveJoinFramework, label_baseline
from repro.datasets import generate_paper_dataset, paper_spec
from repro.er import cluster_matches, evaluate_labels
from repro.matcher import CandidateGenerator, TfIdfCosine, word_tokens

THRESHOLD = 0.3
SCALE = 0.35  # shrink the 997-record corpus for a fast demo
SEED = 42


def main() -> None:
    dataset = generate_paper_dataset(spec=paper_spec(SCALE), seed=SEED)
    print(f"dataset: {len(dataset)} records, {len(dataset.clusters())} publications")
    print(f"largest duplicate cluster: {max(dataset.cluster_size_histogram())}\n")

    # Machine step: TF-IDF cosine over tokenised records + token blocking.
    tokens = {rid: word_tokens(text) for rid, text in dataset.texts().items()}
    tfidf = TfIdfCosine(tokens.values())
    generator = CandidateGenerator(
        similarity=lambda a, b: tfidf.similarity(tokens[a], tokens[b]),
        tokens=tokens,
        max_block_size=200,
    )
    candidates = generator.generate(dataset.ids(), threshold=THRESHOLD)
    print(
        f"machine step: scored {candidates.n_scored:,} blocked pairs "
        f"(of {dataset.n_possible_pairs():,} possible), "
        f"{len(candidates):,} above threshold {THRESHOLD}"
    )

    # Human step: transitivity-aware labeling vs the publish-everything
    # baseline, both against a perfect simulated crowd.
    truth = dataset.truth_oracle()
    framework = TransitiveJoinFramework(labeler="parallel")
    run = framework.label(list(candidates), truth)
    baseline = label_baseline(list(candidates), truth)

    saved = baseline.n_crowdsourced - run.result.n_crowdsourced
    print(f"\nbaseline crowdsources : {baseline.n_crowdsourced:,} pairs")
    print(
        f"transitive crowdsources: {run.result.n_crowdsourced:,} pairs "
        f"in {run.result.n_rounds} parallel rounds"
    )
    print(f"savings                : {saved:,} pairs ({100 * saved / baseline.n_crowdsourced:.1f}%)")

    quality = evaluate_labels(run.result.labels(), truth)
    print(f"pairwise F-measure     : {100 * quality.f_measure:.1f}%")

    clusters = [c for c in cluster_matches(run.result.matches()) if len(c) > 1]
    clusters.sort(key=len, reverse=True)
    print(f"\nrecovered {len(clusters)} duplicate groups; largest:")
    for record_id in sorted(clusters[0])[:5]:
        record = dataset.record(record_id)
        print(f"  {record_id}: {record['authors'][:34]:36} | {record['title'][:44]}")


if __name__ == "__main__":
    raise SystemExit(main())
